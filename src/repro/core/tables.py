"""Table-based routing and the Section 5.4 area analysis.

Real high-radix routers (Cray Aries, Gen-Z) implement routing as table
lookups.  Section 5.4 argues this is exactly why DimWAR and OmniWAR are
practical: their entire per-packet state is the VC identifier, so a route
is a lookup on (destination, input resource class) — no packet fields, no
special architecture.  Adaptive *source* algorithms, by contrast, carry an
intermediate address in the packet and make stateful decisions that a pure
table cannot express.

This module makes that argument executable:

* :func:`compile_tables` walks every reachable (router, input class,
  destination) state of a table-compatible algorithm and records its
  candidate set — the content of the router's routing table;
* :class:`TableRouting` is a drop-in :class:`RoutingAlgorithm` that routes
  from the compiled table; tests verify it is cycle-identical to the
  algorithmic original;
* :func:`full_table_geometry` / :func:`optimized_table_geometry` reproduce
  the area discussion: table depth x width, where "advanced routing
  architectures have size-optimized tables" — per-dimension indexing drops
  the depth from O(routers) to O(sum of widths).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..topology.hyperx import HyperX
from .base import RouteCandidate, RouteContext, RoutingAlgorithm


class TableCompilationError(Exception):
    """The algorithm cannot be expressed as a (dest, class) lookup table."""


@dataclass(frozen=True)
class TableEntry:
    out_port: int
    vc_class: int
    hops: int
    deroute: bool

    @staticmethod
    def from_candidate(c: RouteCandidate) -> "TableEntry":
        return TableEntry(c.out_port, c.vc_class, c.hops, c.deroute)

    def to_candidate(self) -> RouteCandidate:
        return RouteCandidate(
            out_port=self.out_port,
            vc_class=self.vc_class,
            hops=self.hops,
            deroute=self.deroute,
        )


@dataclass
class _Probe:
    """Mock router view: table compilation must never read congestion."""

    router_id: int

    def class_congestion(self, out_port: int, vc_class: int) -> float:
        raise TableCompilationError(
            "algorithm consulted congestion during candidate enumeration; "
            "its candidate *set* is not table-expressible"
        )

    port_congestion = class_congestion


@dataclass
class _ProbePacket:
    """Minimal packet stand-in; mutation of routing state is detected."""

    dst_terminal: int
    src_terminal: int = 0
    routing_state: dict | None = None

    def __post_init__(self):
        self.routing_state = {}


class CompiledTables:
    """Per-router routing tables: (dest router, input class) -> entries."""

    def __init__(self, topology: HyperX, algorithm_name: str, num_classes: int):
        self.topology = topology
        self.algorithm_name = algorithm_name
        self.num_classes = num_classes
        self.tables: list[dict[tuple[int, int], tuple[TableEntry, ...]]] = [
            {} for _ in range(topology.num_routers)
        ]

    def lookup(self, router: int, dest_router: int, input_class: int):
        return self.tables[router].get((dest_router, input_class))

    @property
    def total_entries(self) -> int:
        return sum(len(t) for t in self.tables)

    @property
    def max_options(self) -> int:
        """Widest candidate set in any row (the 'options per entry')."""
        return max(
            (len(v) for t in self.tables for v in t.values()), default=0
        )


def compile_tables(topology: HyperX, algorithm: RoutingAlgorithm) -> CompiledTables:
    """Enumerate every reachable routing state into lookup tables.

    Raises :class:`TableCompilationError` for algorithms whose decisions
    depend on per-packet state beyond the VC class (VAL/UGAL/Clos-AD carry
    an intermediate address — Table 1's "packet contents" cost) or on the
    input port (the OmniWAR back-to-back variant).
    """
    if algorithm.packet_contents != "none":
        raise TableCompilationError(
            f"{algorithm.name} stores '{algorithm.packet_contents}' in the "
            "packet; its routing is not a pure (dest, class) table lookup"
        )
    if getattr(algorithm, "restrict_back_to_back", False):
        raise TableCompilationError(
            "the back-to-back restriction keys on the input port; compile "
            "the unrestricted OmniWAR instead (or widen tables per port)"
        )
    tpr = topology.terminals_per_router
    compiled = CompiledTables(topology, algorithm.name, algorithm.num_classes)
    seen: set[tuple[int, int, int]] = set()
    frontier: list[tuple[int, int | None, int]] = []
    for src in range(topology.num_routers):
        for dst in range(topology.num_routers):
            if src != dst:
                frontier.append((src, None, dst))
    while frontier:
        router, in_class, dst = frontier.pop()
        key = (router, -1 if in_class is None else in_class, dst)
        if key in seen:
            continue
        seen.add(key)
        packet = _ProbePacket(dst_terminal=dst * tpr)
        ctx = RouteContext(
            router=_Probe(router),
            packet=packet,
            input_port=topology.terminal_port(0),
            input_vc_class=0 if in_class is None else in_class,
            from_terminal=in_class is None,
        )
        cands = algorithm.candidates(ctx)
        if packet.routing_state:
            raise TableCompilationError(
                f"{algorithm.name} wrote routing state during enumeration"
            )
        entries = tuple(TableEntry.from_candidate(c) for c in cands)
        # Injection (arrival from the terminal port) gets its own row class:
        # distance-class algorithms route differently at hop 0 than on an
        # arrival at class 0, so the two must not share a table row.
        table_class = -1 if in_class is None else in_class
        existing = compiled.tables[router].get((dst, table_class))
        if existing is None:
            compiled.tables[router][(dst, table_class)] = entries
        elif set(existing) != set(entries):
            raise TableCompilationError(
                f"{algorithm.name} gives different candidates for the same "
                f"(dest, class) row — not table-expressible"
            )
        for c in cands:
            nbr = topology.peer(router, c.out_port).router_port
            if nbr.router != dst:
                frontier.append((nbr.router, c.vc_class, dst))
    return compiled


class TableRouting(RoutingAlgorithm):
    """Routes from a compiled table — the Section 5.4 deployment model."""

    incremental = True
    packet_contents = "none"
    architecture_requirements = "none (table lookup)"

    def __init__(self, compiled: CompiledTables):
        super().__init__(compiled.topology)
        self.compiled = compiled
        self.name = f"{compiled.algorithm_name}@table"
        self.num_classes = compiled.num_classes
        self._tpr = compiled.topology.terminals_per_router

    def candidates(self, ctx: RouteContext) -> list[RouteCandidate]:
        dest_router = ctx.packet.dst_terminal // self._tpr
        klass = -1 if ctx.from_terminal else ctx.input_vc_class
        entries = self.compiled.lookup(ctx.router.router_id, dest_router, klass)
        if entries is None:
            raise RuntimeError(
                f"no table row for router {ctx.router.router_id} -> "
                f"{dest_router} class {klass}: unreachable state"
            )
        return [e.to_candidate() for e in entries]


# ---------------------------------------------------------------------------
# Area model (Section 5.4)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TableGeometry:
    """Routing-table silicon geometry: depth (rows) x width (bits/row)."""

    algorithm: str
    style: str  # "full" | "size-optimized"
    depth: int
    options_per_entry: int
    entry_bits: int

    @property
    def width_bits(self) -> int:
        return self.options_per_entry * self.entry_bits

    @property
    def total_bits(self) -> int:
        return self.depth * self.width_bits


def _entry_bits(topology: HyperX, num_classes: int) -> int:
    port_bits = math.ceil(math.log2(max(2, topology.router_radix)))
    class_bits = math.ceil(math.log2(max(2, num_classes)))
    return port_bits + class_bits


def full_table_geometry(
    topology: HyperX, algorithm: RoutingAlgorithm, compiled: CompiledTables | None = None
) -> TableGeometry:
    """Flat destination-indexed table: depth = dests x classes."""
    compiled = compiled or compile_tables(topology, algorithm)
    depth = (topology.num_routers - 1) * algorithm.num_classes
    return TableGeometry(
        algorithm=algorithm.name,
        style="full",
        depth=depth,
        options_per_entry=max(1, compiled.max_options),
        entry_bits=_entry_bits(topology, algorithm.num_classes),
    )


def optimized_table_geometry(
    topology: HyperX, algorithm: RoutingAlgorithm, compiled: CompiledTables | None = None
) -> TableGeometry:
    """Size-optimized (Aries/Gen-Z style) per-dimension tables.

    HyperX routing decomposes per dimension: the row index is (dimension,
    destination coordinate, class), so the depth is ``sum(w_d) x classes``
    instead of ``prod(w_d) x classes`` — "the depth of the tables is
    greatly reduced" (Section 5.4).  The options per row shrink to the
    per-dimension maximum (the aligning port plus the dimension's deroutes).
    """
    compiled = compiled or compile_tables(topology, algorithm)
    depth = sum(topology.widths) * algorithm.num_classes
    max_width = max(topology.widths)
    per_dim_options = min(compiled.max_options, max_width - 1)
    return TableGeometry(
        algorithm=algorithm.name,
        style="size-optimized",
        depth=depth,
        options_per_entry=max(1, per_dim_options),
        entry_bits=_entry_bits(topology, algorithm.num_classes),
    )
