"""Channel-dependency-graph deadlock analysis.

Dally & Seitz: a routing algorithm is deadlock free on a network with
credit-based flow control iff the channel dependency graph — nodes are
(channel, resource class) pairs, edges connect resources a packet may hold
simultaneously while waiting — is acyclic.

The paper argues acyclicity for DimWAR (2 resource classes reused across
ordered dimensions) and OmniWAR (distance classes) on paper; here we *check*
it mechanically, which both validates our implementations and demonstrates
the claimed property.

Two builders are provided:

* :func:`dependency_graph_incremental` walks every reachable packet state of
  a *stateless* incremental algorithm (DOR, MIN-AD, DimWAR, OmniWAR — their
  candidate sets depend only on position, input port, and input class) with a
  breadth-first search from all injection states, collecting the channel-class
  dependencies actually reachable.
* :func:`dependency_graph_two_phase` enumerates the deterministic two-phase
  DOR paths of VAL/UGAL/Clos-AD over all (source, intermediate, destination)
  triples.

Dependencies are tracked at *resource class* granularity: the VC map assigns
each physical VC to exactly one class, so acyclicity over classes implies
acyclicity over VCs.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..network.types import Packet
from ..topology.base import Topology
from ..topology.hyperx import HyperX
from .base import RouteContext, RoutingAlgorithm


@dataclass
class _MockRouterView:
    router_id: int

    def class_congestion(self, out_port: int, vc_class: int) -> float:
        raise RuntimeError(
            "routing candidates must not depend on congestion state"
        )

    port_congestion = class_congestion


def _channel_node(router: int, port: int, klass: int) -> tuple[int, int, int]:
    """Node id for (outgoing channel of router.port, resource class)."""
    return (router, port, klass)


def dependency_graph_incremental(
    topology: Topology, algorithm: RoutingAlgorithm
) -> nx.DiGraph:
    """Reachable channel-class dependency graph of a stateless algorithm."""
    g = nx.DiGraph()
    tpr = topology.terminals_per_router
    # State: (router, input_port or None for injection, input class, dest router)
    seen: set[tuple[int, int | None, int, int]] = set()
    frontier: list[tuple[int, int | None, int, int]] = []
    for src in range(topology.num_routers):
        for dst in range(topology.num_routers):
            if src == dst:
                continue
            frontier.append((src, None, 0, dst))
    while frontier:
        state = frontier.pop()
        if state in seen:
            continue
        seen.add(state)
        router, in_port, in_class, dst = state
        packet = Packet(
            src_terminal=0, dst_terminal=dst * tpr, size=1, create_cycle=0
        )
        if in_port is None:
            # injection: the port the router's first terminal attaches to
            in_port = topology.terminal_attachment(router * tpr).port
            from_terminal = True
        else:
            from_terminal = False
        ctx = RouteContext(
            router=_MockRouterView(router),
            packet=packet,
            input_port=in_port,
            input_vc_class=in_class,
            from_terminal=from_terminal,
        )
        for cand in algorithm.candidates(ctx):
            if not from_terminal:
                # The packet holds a slot on the channel it arrived on while
                # waiting for the channel it wants: record the dependency.
                peer = topology.peer(router, in_port).router_port
                g.add_edge(
                    _channel_node(peer.router, peer.port, in_class),
                    _channel_node(router, cand.out_port, cand.vc_class),
                )
            else:
                g.add_node(_channel_node(router, cand.out_port, cand.vc_class))
            nbr = topology.peer(router, cand.out_port).router_port
            if nbr.router != dst:
                frontier.append((nbr.router, nbr.port, cand.vc_class, dst))
            # Arriving at the destination router ends the chain: the ejection
            # channel sinks unconditionally and is never part of a cycle.
    return g


def _dor_path(topology: HyperX, src: int, dst: int) -> list[tuple[int, int]]:
    """The (router, out_port) hops of the DOR path src -> dst."""
    path = []
    here = list(topology.coords(src))
    dest = topology.coords(dst)
    rid = src
    for d in range(topology.num_dims):
        if here[d] != dest[d]:
            port = topology.dim_port(rid, d, dest[d])
            path.append((rid, port))
            here[d] = dest[d]
            rid = topology.router_id(here)
    return path


def dependency_graph_two_phase(topology: HyperX) -> nx.DiGraph:
    """Dependency graph of two-phase DOR routing (VAL / UGAL / Clos-AD).

    Phase 1 (source -> intermediate) runs on class 0, phase 2 (intermediate ->
    destination) on class 1; minimal-mode packets use class 1 only.
    """
    g = nx.DiGraph()
    n = topology.num_routers
    for src in range(n):
        for dst in range(n):
            if src == dst:
                continue
            for inter in range(n):
                hops = [
                    (r, p, 0) for r, p in _dor_path(topology, src, inter)
                ] + [(r, p, 1) for r, p in _dor_path(topology, inter, dst)]
                for (r1, p1, k1), (r2, p2, k2) in zip(hops, hops[1:]):
                    g.add_edge(
                        _channel_node(r1, p1, k1), _channel_node(r2, p2, k2)
                    )
    return g


def verify_rank_certificate(
    topology: Topology, algorithm: RoutingAlgorithm
) -> int:
    """Constructive deadlock-freedom proof: check a channel-rank certificate.

    Cycle search (:func:`find_cycle`) proves acyclicity by exhaustion; a
    *rank certificate* proves it by construction — the algorithm states a
    total pre-order over its channels
    (:attr:`~repro.core.base.RoutingAlgorithm.channel_rank`) and this
    function checks, edge by edge over the reachable dependency graph,
    that every legal dependency **strictly increases** the rank.  A strict
    increase along every edge makes a cycle impossible, and a violated
    edge names exactly which ordering claim of the algorithm's proof is
    wrong — far more actionable than a raw cycle.

    FTHX (adaptive distance classes below a dimension-major escape order)
    and VCFree (the up*/down* channel order) both ship certificates;
    returns the number of edges verified, raises ``AssertionError`` on the
    first ordering violation and ``ValueError`` when the algorithm
    declares no certificate.
    """
    rank = getattr(algorithm, "channel_rank", None)
    if rank is None:
        raise ValueError(
            f"{algorithm.name} declares no channel_rank certificate; "
            f"use assert_deadlock_free for the cycle-search proof"
        )
    g = dependency_graph_incremental(topology, algorithm)
    checked = 0
    for (r1, p1, k1), (r2, p2, k2) in g.edges():
        ra = rank(r1, p1, k1)
        rb = rank(r2, p2, k2)
        assert ra < rb, (
            f"{algorithm.name} rank certificate violated on {topology!r}: "
            f"channel (router {r1}, port {p1}, class {k1}) rank {ra} must "
            f"be strictly below its dependency (router {r2}, port {p2}, "
            f"class {k2}) rank {rb}"
        )
        checked += 1
    return checked


def find_cycle(graph: nx.DiGraph) -> list | None:
    """Return one dependency cycle, or None when the graph is acyclic."""
    try:
        return nx.find_cycle(graph)
    except nx.NetworkXNoCycle:
        return None


def assert_deadlock_free(topology: Topology, algorithm: RoutingAlgorithm) -> None:
    """Raise AssertionError with the offending cycle if one exists."""
    g = dependency_graph_incremental(topology, algorithm)
    cycle = find_cycle(g)
    assert cycle is None, (
        f"{algorithm.name} has a channel-dependency cycle on "
        f"{topology!r}: {cycle}"
    )
