"""OmniWAR — Omni-dimensional Weighted Adaptive Routing (Section 5.2).

The paper's heavy-weight incremental algorithm.  At every hop the packet may
move in **any unaligned dimension** — minimally (the aligning hop) or as a
deroute (any other coordinate of an unaligned dimension) — so dimensions need
not be resolved in order or completely before touching another.

Deadlock freedom uses **distance classes**: the VC index is the hop index
(``VC_out = VC_in + 1``), so the channel-dependency graph is trivially acyclic.
Configured with ``N + M`` classes (``N`` = network dimensions, ``M`` = deroute
budget), the algorithm permits a deroute exactly when the remaining minimal
hop count is strictly less than the remaining classes (Section 5.2 step 2) —
the budget M is spent anywhere along the path, in any combination.

With ``M = N`` (2N classes) OmniWAR can deroute once per dimension's worth of
congestion and achieves the theoretical 100%/50% benign/worst-case throughput
bounds regardless of dimensionality.  The optional restriction of back-to-back
deroutes in the same dimension (the Section 5.2 optimization) is a pure
function of the input port and candidate output ports — no packet state.

As with DimWAR, all routing state lives in the VC identifier; the packet
format is untouched.

Behaviour under faults (constructed on a ``DegradedTopology``): pure masking
— dead minimal ports are dropped from the candidate list and deroutes are
filtered to survivors whose detour router keeps a live onward aligning hop.
Because OmniWAR may move in *any* unaligned dimension, a dead link in one
dimension rarely constrains the packet: some other unaligned dimension's
minimal hop is usually alive, and the distance-class argument is untouched
by masking (removing candidates cannot create a cycle).  The only loss
corner is a packet whose remaining minimal hops exactly consume its
remaining distance classes *and* whose every minimal port is dead — then the
candidate list is empty and the router raises
:class:`~repro.core.base.NoRouteError` (counted by the fault experiment,
not a hang).  A deroute budget of ``M = N`` makes this vanishingly rare for
small fault counts.
"""

from __future__ import annotations

from .base import RouteCandidate, RouteContext
from .hyperx_base import HyperXRouting


class OmniWAR(HyperXRouting):
    name = "OmniWAR"
    incremental = True
    dimension_ordered = False
    deadlock_handling = "restricted routes & distance classes"
    packet_contents = "none"
    fault_aware = True
    distance_classes = True

    def __init__(self, topology, deroutes: int | None = None,
                 restrict_back_to_back: bool = False):
        super().__init__(topology)
        n = topology.num_dims
        self.deroutes = n if deroutes is None else int(deroutes)
        if self.deroutes < 0:
            raise ValueError("deroute budget must be >= 0")
        self.num_classes = n + self.deroutes
        self.restrict_back_to_back = restrict_back_to_back
        if restrict_back_to_back:
            self.name = "OmniWAR-b2b"

    def cache_key(self, ctx: RouteContext, dest_router: int):
        # The distance class (hop index) fixes the deroute budget; with the
        # back-to-back restriction the input port's dimension also matters.
        klass = 0 if ctx.from_terminal else ctx.input_vc_class + 1
        if self.restrict_back_to_back and not ctx.from_terminal:
            return (dest_router, klass, self._port_dim_tab[ctx.input_port])
        return (dest_router, klass)

    def candidates(self, ctx: RouteContext) -> list[RouteCandidate]:
        hx = self.hx
        rid = ctx.router.router_id
        coords = hx.coords
        here = coords(rid)
        dest = coords(ctx.packet.dst_terminal // self._tpr)
        klass = 0 if ctx.from_terminal else ctx.input_vc_class + 1
        remaining = 0
        for a, b in zip(here, dest):
            if a != b:
                remaining += 1
        classes_left = self.num_classes - klass
        assert remaining <= classes_left, (
            "distance-class invariant violated: not enough classes left to "
            "reach the destination minimally"
        )
        # Section 5.2 step 2: derouting is allowed unless the remaining
        # minimal hops exactly consume the remaining distance classes.
        may_deroute = classes_left - remaining >= 1

        input_dim = None
        if self.restrict_back_to_back and not ctx.from_terminal:
            input_dim = self._port_dim_tab[ctx.input_port]

        f = self.routing_faults(rid)
        min_tab = self._min_port_tab
        der_tab = self._deroute_tab
        cands: list[RouteCandidate] = []
        append = cands.append
        if f is None:  # pristine fast path: pure table lookups
            deroute_hops = remaining + 1
            for d in range(hx.num_dims):
                h = here[d]
                t = dest[d]
                if h == t:
                    continue  # only unaligned dimensions are valid (step 3)
                append(RouteCandidate(min_tab[d][h][t], klass, remaining))
                if may_deroute and d != input_dim:
                    for port in der_tab[d][h][t]:
                        append(RouteCandidate(port, klass, deroute_hops, True))
            return cands

        # Fault path: mask dead ports, filter deroutes to viable survivors.
        for d in range(hx.num_dims):
            if here[d] == dest[d]:
                continue
            min_port = min_tab[d][here[d]][dest[d]]
            if (rid, min_port) in f.failed_ports:
                f.masked_candidates += 1
            else:
                append(RouteCandidate(min_port, klass, remaining))
            if may_deroute and d != input_dim:
                for port in self.viable_deroute_ports(rid, d, here[d], dest[d]):
                    append(RouteCandidate(port, klass, remaining + 1, True))
        return cands
