"""Valiant's randomized routing (VAL).

Every packet is routed minimally (DOR) to a uniformly random intermediate
router, then minimally (DOR) to its destination.  This perfectly load-balances
any admissible traffic pattern at the price of doubling path length and
bandwidth consumption — the paper's non-minimal oblivious baseline, achieving
~50% throughput on adversarial patterns and only ~50% on benign ones.

Two resource classes provide deadlock freedom: class 0 for the source-to-
intermediate DOR phase, class 1 for the intermediate-to-destination phase.
The intermediate address is carried in the packet (Table 1: "int. addr."),
which is exactly the packet-format cost DimWAR/OmniWAR avoid.
"""

from __future__ import annotations

import numpy as np

from .base import RouteCandidate, RouteContext
from .hyperx_base import HyperXRouting


class Valiant(HyperXRouting):
    name = "VAL"
    num_classes = 2
    incremental = False
    dimension_ordered = True
    deadlock_handling = "restricted routes & resource classes"
    packet_contents = "int. addr."

    def __init__(self, topology, seed: int = 7):
        super().__init__(topology)
        self.rng = np.random.default_rng(seed)

    def _intermediate(self, ctx: RouteContext) -> tuple[int, ...]:
        state = ctx.packet.routing_state
        inter = state.get("val_int")
        if inter is None:
            # Sample once, at the source router, and pin it immediately: the
            # oblivious choice must not depend on later congestion stalls.
            rid = int(self.rng.integers(self.hx.num_routers))
            inter = self.hx.coords(rid)
            state["val_int"] = inter
        return inter

    def candidates(self, ctx: RouteContext) -> list[RouteCandidate]:
        here = self.here(ctx)
        dest = self.dest_coords(ctx.packet)
        inter = self._intermediate(ctx)
        state = ctx.packet.routing_state
        if not state.get("val_phase2") and here == inter:
            state["val_phase2"] = True
        if not state.get("val_phase2"):
            hop = self.dor_port(ctx.router.router_id, here, inter)
            if hop is None:  # intermediate == source router: skip phase 1
                state["val_phase2"] = True
            else:
                port, _ = hop
                hops = self.hx.min_hops(
                    ctx.router.router_id, self.hx.router_id(inter)
                ) + self.hx.min_hops(
                    self.hx.router_id(inter), self.dest_router(ctx.packet)
                )
                return [RouteCandidate(out_port=port, vc_class=0, hops=hops)]
        hop = self.dor_port(ctx.router.router_id, here, dest)
        assert hop is not None
        port, _ = hop
        remaining = sum(1 for a, b in zip(here, dest) if a != b)
        return [RouteCandidate(out_port=port, vc_class=1, hops=remaining)]
