"""DimWAR — Dimensionally-ordered Weighted Adaptive Routing (Section 5.1).

The paper's light-weight incremental algorithm.  The packet traverses
dimensions strictly in order; within the *current* dimension (the first
unaligned one) it may take either

* the **minimal** aligning hop, on resource class 0, or
* one **deroute** — a lateral hop to any other coordinate of the current
  dimension — on resource class 1, permitted only when the packet is
  currently on class 0 (i.e. its previous hop was not a deroute).

After a deroute the packet is on class 1, so its only valid move is the
minimal hop (class 0), which aligns the dimension: *at most one deroute per
dimension*, and the path grows by at most one hop per dimension — the
paper's definition of fine-grained incremental adaptive routing.

Deadlock freedom (Section 5.1): order the resource classes of dimension ``d``
as ``(d, class 1) < (d, class 0) < (d+1, class 1) < ...``.  Every hop moves
strictly upward in that order — a deroute (class 1) in ``d`` is followed only
by the class-0 minimal hop in ``d``, and class-0 hops are followed only by
hops in higher dimensions — so the channel-dependency graph is acyclic with
just **2 VCs regardless of dimensionality**, the algorithm's headline
practicality property.  All routing state is carried by the VC index alone:
no fields are added to the packet.

Behaviour under faults (constructed on a ``DegradedTopology``): the weight
machinery already chooses among minimal and deroute candidates, so fault
handling is pure masking — a dead minimal hop is simply not offered, and
deroutes are filtered to those whose lateral hop *and* the detour router's
onward aligning hop survive.  The one new mechanism is the class-1 corner
(packet just derouted, forced minimal hop dead): the packet takes a monotone
escape hop — a surviving lateral move to a strictly higher coordinate, still
on class 1 — which keeps the channel-dependency graph acyclic (docs/FAULTS.md
gives the full argument; the fault tests check it mechanically).
"""

from __future__ import annotations

from .base import RouteCandidate, RouteContext
from .hyperx_base import HyperXRouting


class DimWAR(HyperXRouting):
    name = "DimWAR"
    num_classes = 2
    incremental = True
    dimension_ordered = True
    deadlock_handling = "restricted routes & resource classes"
    packet_contents = "none"
    fault_aware = True

    def cache_key(self, ctx: RouteContext, dest_router: int):
        # Besides the destination, candidates depend only on whether the
        # packet is on the minimal class (deroutes permitted) — all routing
        # state lives in the VC index.
        on_min_class = ctx.from_terminal or ctx.input_vc_class == 0
        return (dest_router, on_min_class)

    def candidates(self, ctx: RouteContext) -> list[RouteCandidate]:
        hx = self.hx
        rid = ctx.router.router_id
        coords = hx.coords
        here = coords(rid)
        dest = coords(ctx.packet.dst_terminal // self._tpr)
        dim = -1
        remaining = 0
        for d in range(hx.num_dims):
            if here[d] != dest[d]:
                if dim < 0:
                    dim = d
                remaining += 1
        assert dim >= 0, "router never routes packets already at destination"
        on_min_class = ctx.from_terminal or ctx.input_vc_class == 0
        f = self.routing_faults(rid)

        if f is None:  # pristine fast path: pure table lookups
            h = here[dim]
            t = dest[dim]
            cands = [RouteCandidate(self._min_port_tab[dim][h][t], 0, remaining)]
            if on_min_class:
                append = cands.append
                deroute_hops = remaining + 1
                for port in self._deroute_tab[dim][h][t]:
                    append(RouteCandidate(port, 1, deroute_hops, True))
            return cands

        # Fault path: mask dead ports; escape hops cover the class-1 corner.
        cands = []
        min_port = self.min_port(rid, dim, dest[dim])
        min_alive = (rid, min_port) not in f.failed_ports
        if min_alive:
            cands.append(
                RouteCandidate(out_port=min_port, vc_class=0, hops=remaining)
            )
        else:
            f.masked_candidates += 1
        if on_min_class:
            for port in self.viable_deroute_ports(rid, dim, here[dim], dest[dim]):
                cands.append(
                    RouteCandidate(
                        out_port=port, vc_class=1, hops=remaining + 1, deroute=True
                    )
                )
        elif not min_alive:
            for port in self.escape_ports(rid, dim, here[dim], dest[dim]):
                cands.append(
                    RouteCandidate(
                        out_port=port, vc_class=1, hops=remaining + 1, deroute=True
                    )
                )
        return cands
