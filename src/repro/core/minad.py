"""MIN-AD — minimal adaptive routing.

At every hop, pick the least-congested aligning hop of *any* unaligned
dimension (incremental, minimal only).  Traversing dimensions in arbitrary
order creates cyclic channel dependencies on HyperX, so MIN-AD uses distance
classes — the VC index increments on every hop — needing N classes for an
N-dimensional network.  This is also exactly OmniWAR with a deroute budget of
zero, and the "underlying minimal algorithm" the paper credits for OmniWAR's
slight edge on uniform-random traffic (Section 6.1).
"""

from __future__ import annotations

from .base import RouteCandidate, RouteContext
from .hyperx_base import HyperXRouting


class MinAdaptive(HyperXRouting):
    name = "MIN-AD"
    incremental = True
    dimension_ordered = False
    deadlock_handling = "distance classes"
    packet_contents = "none"
    distance_classes = True

    def __init__(self, topology):
        super().__init__(topology)
        self.num_classes = topology.num_dims

    def cache_key(self, ctx: RouteContext, dest_router: int):
        # Distance classes: the hop index (VC class) and destination fully
        # determine the candidate set at a given router.
        klass = 0 if ctx.from_terminal else ctx.input_vc_class + 1
        return (dest_router, klass)

    def candidates(self, ctx: RouteContext) -> list[RouteCandidate]:
        here = self.here(ctx)
        dest = self.dest_coords(ctx.packet)
        rid = ctx.router.router_id
        klass = 0 if ctx.from_terminal else ctx.input_vc_class + 1
        remaining = sum(1 for a, b in zip(here, dest) if a != b)
        assert klass + remaining <= self.num_classes, (
            "distance-class invariant violated: packet cannot reach its "
            "destination within the remaining classes"
        )
        return [
            RouteCandidate(
                out_port=self.min_port(rid, d, dest[d]),
                vc_class=klass,
                hops=remaining,
            )
            for d in range(self.hx.num_dims)
            if here[d] != dest[d]
        ]
