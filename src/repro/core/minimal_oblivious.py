"""Minimal *oblivious* routing baselines from Section 2.2: ROMM and an
O1Turn generalization.

The paper's background cites them as evidence that "all minimal routing
algorithms, including O1Turn and ROMM, have significant throughput
deficiencies when traffic is not uniformly distributed ... on the topology
evaluated in this paper all minimal algorithms achieve 4x less worst case
throughput compared to non-minimal algorithms."  Implementing them lets the
benchmark suite *measure* that claim (see
``benchmarks/test_minimal_vs_nonminimal.py``).

* **ROMM** (Nesson & Johnsson): route DOR to a random intermediate *inside
  the minimal sub-lattice* (each intermediate coordinate is either the
  source's or the destination's), then DOR to the destination.  Paths stay
  minimal; two resource classes as for VAL.
* **O1Turn generalized** (Seo et al. routed 2-D meshes via XY or YX chosen
  per packet): each packet draws a random *dimension order* and resolves
  dimensions minimally in that order.  Fixed-per-packet orders over N
  dimensions need distance classes (N VCs) for deadlock freedom on HyperX.
"""

from __future__ import annotations

import numpy as np

from .base import RouteCandidate, RouteContext
from .hyperx_base import HyperXRouting


class Romm(HyperXRouting):
    """ROMM: two-phase DOR through a random minimal-quadrant intermediate."""

    name = "ROMM"
    num_classes = 2
    incremental = False
    dimension_ordered = True
    deadlock_handling = "restricted routes & resource classes"
    packet_contents = "int. addr."

    def __init__(self, topology, seed: int = 23):
        super().__init__(topology)
        self.rng = np.random.default_rng(seed)

    def _intermediate(self, ctx: RouteContext) -> tuple[int, ...]:
        state = ctx.packet.routing_state
        inter = state.get("romm_int")
        if inter is None:
            here = self.here(ctx)
            dest = self.dest_coords(ctx.packet)
            inter = tuple(
                d if self.rng.random() < 0.5 else h
                for h, d in zip(here, dest)
            )
            state["romm_int"] = inter
        return inter

    def candidates(self, ctx: RouteContext) -> list[RouteCandidate]:
        here = self.here(ctx)
        dest = self.dest_coords(ctx.packet)
        inter = self._intermediate(ctx)
        state = ctx.packet.routing_state
        if not state.get("romm_phase2") and here == inter:
            state["romm_phase2"] = True
        rid = ctx.router.router_id
        remaining = sum(1 for a, b in zip(here, dest) if a != b)
        if not state.get("romm_phase2"):
            hop = self.dor_port(rid, here, inter)
            if hop is None:
                state["romm_phase2"] = True
            else:
                # intermediate lies on a minimal path: total hops == minimal
                return [RouteCandidate(out_port=hop[0], vc_class=0, hops=remaining)]
        hop = self.dor_port(rid, here, dest)
        assert hop is not None
        return [RouteCandidate(out_port=hop[0], vc_class=1, hops=remaining)]


class RandomDimOrder(HyperXRouting):
    """O1Turn generalized: per-packet random dimension order, minimal.

    The packet's dimension order is drawn once; at each hop the first
    unaligned dimension *in that order* is resolved.  Mixing N! orders
    across packets balances load like O1Turn's XY/YX mixing does in 2-D.
    Distance classes (VC = hop index) give deadlock freedom for any order.
    """

    name = "O1Turn"
    incremental = False
    dimension_ordered = False
    deadlock_handling = "distance classes"
    packet_contents = "dim. order"
    distance_classes = True

    def __init__(self, topology, seed: int = 29):
        super().__init__(topology)
        self.num_classes = topology.num_dims
        self.rng = np.random.default_rng(seed)

    def _order(self, ctx: RouteContext) -> tuple[int, ...]:
        state = ctx.packet.routing_state
        order = state.get("o1_order")
        if order is None:
            order = tuple(int(d) for d in self.rng.permutation(self.hx.num_dims))
            state["o1_order"] = order
        return order

    def candidates(self, ctx: RouteContext) -> list[RouteCandidate]:
        here = self.here(ctx)
        dest = self.dest_coords(ctx.packet)
        order = self._order(ctx)
        rid = ctx.router.router_id
        klass = 0 if ctx.from_terminal else ctx.input_vc_class + 1
        remaining = sum(1 for a, b in zip(here, dest) if a != b)
        for d in order:
            if here[d] != dest[d]:
                return [
                    RouteCandidate(
                        out_port=self.min_port(rid, d, dest[d]),
                        vc_class=klass,
                        hops=remaining,
                    )
                ]
        raise AssertionError("never called at the destination router")
