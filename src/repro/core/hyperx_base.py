"""Shared machinery for HyperX routing algorithms.

All HyperX algorithms need the same geometric primitives: the coordinates of
the current and destination routers, the set of unaligned dimensions, the
minimal port in a dimension, and the deroute ports (lateral moves within an
unaligned dimension that neither approach nor leave the destination —
Section 4.2's definition of a deroute).

Fault support: algorithms may be constructed on a
:class:`~repro.faults.degraded.DegradedTopology` wrapping a HyperX.  The base
class unwraps it, keeps a handle on the shared
:class:`~repro.faults.model.FaultState` (``self.faults``, ``None`` on a
pristine topology), and provides the port-liveness helpers fault-aware
subclasses use to mask failed output ports in ``candidates()``:
:meth:`port_alive`, :meth:`viable_deroute_ports`, :meth:`escape_ports`, and
:meth:`dor_path_alive`.  See docs/FAULTS.md for the per-algorithm behaviour.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..faults.degraded import DegradedTopology
from ..topology.hyperx import HyperX
from .base import RouteContext, RoutingAlgorithm

if TYPE_CHECKING:  # pragma: no cover
    from ..faults.model import FaultState
    from ..network.types import Packet


class HyperXRouting(RoutingAlgorithm):
    """Base class for routing algorithms on HyperX topologies."""

    def __init__(self, topology: HyperX | DegradedTopology):
        self.faults: "FaultState | None" = None
        if isinstance(topology, DegradedTopology):
            base = topology.base
            self.faults = topology.faults
        else:
            base = topology
        if not isinstance(base, HyperX):
            raise TypeError(f"{type(self).__name__} requires a HyperX topology")
        super().__init__(topology)
        self.hx: HyperX = base
        self._tpr = base.terminals_per_router
        # Pre-tabulated geometry (the candidate-construction hot path).
        # ``dim_port(router, d, c)`` depends on the router only through its
        # own coordinate in ``d``, so each dimension gets two O(w^2) tables:
        #   _min_port_tab[d][own][dest]  -> the aligning port (own != dest)
        #   _deroute_tab[d][own][dest]   -> tuple of lateral (deroute) ports,
        #                                   excluding own and dest
        # and every router-facing port maps to its dimension via
        # _port_dim_tab[port].  The tables are tiny (sum of w_d^2 entries)
        # and make candidates() table lookups instead of arithmetic + calls.
        self._min_port_tab: list[list[list[int]]] = []
        self._deroute_tab: list[list[list[tuple[int, ...]]]] = []
        for d, w in enumerate(base.widths):
            off = base._dim_offset[d]
            min_t = [[0] * w for _ in range(w)]
            der_t: list[list[tuple[int, ...]]] = [[()] * w for _ in range(w)]
            for own in range(w):
                for dest in range(w):
                    if dest != own:
                        min_t[own][dest] = off + (dest if dest < own else dest - 1)
                    der_t[own][dest] = tuple(
                        off + (c if c < own else c - 1)
                        for c in range(w)
                        if c != own and c != dest
                    )
            self._min_port_tab.append(min_t)
            self._deroute_tab.append(der_t)
        self._port_dim_tab: list[int] = [
            d
            for d, w in enumerate(base.widths)
            for _ in range(w - 1)
        ]

    # -- geometry ------------------------------------------------------

    def here(self, ctx: RouteContext) -> tuple[int, ...]:
        return self.hx.coords(ctx.router.router_id)

    def dest_router(self, packet: "Packet") -> int:
        return packet.dst_terminal // self.hx.terminals_per_router

    def dest_coords(self, packet: "Packet") -> tuple[int, ...]:
        return self.hx.coords(self.dest_router(packet))

    def unaligned(self, here: tuple[int, ...], dest: tuple[int, ...]) -> list[int]:
        return [d for d in range(self.hx.num_dims) if here[d] != dest[d]]

    def min_port(self, router_id: int, dim: int, dest_coord: int) -> int:
        """Port taking the single aligning hop in ``dim``."""
        return self._min_port_tab[dim][self.hx.coords(router_id)[dim]][dest_coord]

    def deroute_ports(
        self, router_id: int, dim: int, here_coord: int, dest_coord: int
    ) -> tuple[int, ...]:
        """Ports for lateral (deroute) moves within an unaligned ``dim``.

        Excludes the current coordinate (no self loop) and the destination
        coordinate (that hop would be minimal, not a deroute).
        """
        return self._deroute_tab[dim][here_coord][dest_coord]

    # -- DOR helpers ----------------------------------------------------

    def first_unaligned_dim(
        self, here: tuple[int, ...], dest: tuple[int, ...]
    ) -> int | None:
        for d in range(self.hx.num_dims):
            if here[d] != dest[d]:
                return d
        return None

    def dor_port(
        self, router_id: int, here: tuple[int, ...], dest: tuple[int, ...]
    ) -> tuple[int, int] | None:
        """(port, dim) of the next dimension-order hop toward ``dest``."""
        d = self.first_unaligned_dim(here, dest)
        if d is None:
            return None
        return self.hx.dim_port(router_id, d, dest[d]), d

    # -- fault helpers --------------------------------------------------
    #
    # All of these are pure functions of the current FaultState epoch: they
    # read self.faults.failed_ports only.  Candidate lists computed through
    # them stay valid until the next fault event, which is exactly when the
    # FaultInjector invalidates every router's candidate cache.

    def port_alive(self, router_id: int, port: int) -> bool:
        """True when the output ``port`` of ``router_id`` is not failed."""
        f = self.faults
        return f is None or (router_id, port) not in f.failed_ports

    def routing_faults(self, router_id: int) -> "FaultState | None":
        """The FaultState if candidate masking applies at ``router_id``.

        Returns ``None`` on a pristine topology, when no link has failed
        yet, and — deliberately — when ``router_id`` itself is a failed
        router.  A dead router stops *admitting* traffic (surviving routers
        mask every link toward it), but packets already buffered inside it
        when it died must still drain: they are routed with the pristine
        rule over its physically-present channels.  Masking the dead
        router's own output ports instead would leave those packets with an
        empty candidate list and a spurious ``NoRouteError``.
        """
        f = self.faults
        if f is None or not f.failed_ports or router_id in f.failed_routers:
            return None
        return f

    def viable_deroute_ports(
        self, router_id: int, dim: int, here_coord: int, dest_coord: int
    ) -> list[int]:
        """Deroute ports whose lateral hop AND the detour router's onward
        aligning hop both survive.

        Filtering on the onward hop matters: a deroute whose detour router
        has a dead aligning link would strand a class-1 packet with nothing
        but escape hops; checking one hop ahead keeps the common single-fault
        case loss-free.  Each filtered port counts toward the
        ``masked_candidates`` telemetry.
        """
        f = self.faults
        if f is None or not f.failed_ports:
            return self.deroute_ports(router_id, dim, here_coord, dest_coord)
        out = []
        for c in range(self.hx.widths[dim]):
            if c == here_coord or c == dest_coord:
                continue
            port = self.hx.dim_port(router_id, dim, c)
            if (router_id, port) in f.failed_ports:
                f.masked_candidates += 1
                continue
            nbr = self.hx.neighbor(router_id, dim, c)
            onward = self.hx.dim_port(nbr, dim, dest_coord)
            if (nbr, onward) in f.failed_ports:
                f.masked_candidates += 1
                continue
            out.append(port)
        return out

    def escape_ports(
        self, router_id: int, dim: int, here_coord: int, dest_coord: int
    ) -> list[int]:
        """Monotone escape hops for a class-1 packet whose forced minimal
        hop is dead: surviving lateral moves to a *strictly higher*
        coordinate in ``dim`` (destination coordinate excluded).

        The monotonicity is the deadlock argument: escape hops within
        ``(dim, class 1)`` strictly increase the source coordinate, so the
        dependencies among those channels form a total order and cannot
        cycle (mechanically verified by the checker in the fault tests).
        """
        f = self.faults
        out = []
        for c in range(here_coord + 1, self.hx.widths[dim]):
            if c == dest_coord:
                continue
            port = self.hx.dim_port(router_id, dim, c)
            if f is not None and (router_id, port) in f.failed_ports:
                f.masked_candidates += 1
                continue
            out.append(port)
        return out

    def dor_path_alive(
        self, router_id: int, here: tuple[int, ...], dest: tuple[int, ...]
    ) -> bool:
        """True when every hop of the DOR path ``here -> dest`` survives."""
        f = self.faults
        if f is None or not f.failed_ports:
            return True
        rid = list(here)
        r = router_id
        for d in range(self.hx.num_dims):
            if rid[d] == dest[d]:
                continue
            port = self.hx.dim_port(r, d, dest[d])
            if (r, port) in f.failed_ports:
                return False
            r = self.hx.neighbor(r, d, dest[d])
            rid[d] = dest[d]
        return True
