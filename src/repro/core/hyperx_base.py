"""Shared machinery for HyperX routing algorithms.

All HyperX algorithms need the same geometric primitives: the coordinates of
the current and destination routers, the set of unaligned dimensions, the
minimal port in a dimension, and the deroute ports (lateral moves within an
unaligned dimension that neither approach nor leave the destination —
Section 4.2's definition of a deroute).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..topology.hyperx import HyperX
from .base import RouteContext, RoutingAlgorithm

if TYPE_CHECKING:  # pragma: no cover
    from ..network.types import Packet


class HyperXRouting(RoutingAlgorithm):
    """Base class for routing algorithms on HyperX topologies."""

    def __init__(self, topology: HyperX):
        if not isinstance(topology, HyperX):
            raise TypeError(f"{type(self).__name__} requires a HyperX topology")
        super().__init__(topology)
        self.hx: HyperX = topology

    # -- geometry ------------------------------------------------------

    def here(self, ctx: RouteContext) -> tuple[int, ...]:
        return self.hx.coords(ctx.router.router_id)

    def dest_router(self, packet: "Packet") -> int:
        return packet.dst_terminal // self.hx.terminals_per_router

    def dest_coords(self, packet: "Packet") -> tuple[int, ...]:
        return self.hx.coords(self.dest_router(packet))

    def unaligned(self, here: tuple[int, ...], dest: tuple[int, ...]) -> list[int]:
        return [d for d in range(self.hx.num_dims) if here[d] != dest[d]]

    def min_port(self, router_id: int, dim: int, dest_coord: int) -> int:
        """Port taking the single aligning hop in ``dim``."""
        return self.hx.dim_port(router_id, dim, dest_coord)

    def deroute_ports(
        self, router_id: int, dim: int, here_coord: int, dest_coord: int
    ) -> list[int]:
        """Ports for lateral (deroute) moves within an unaligned ``dim``.

        Excludes the current coordinate (no self loop) and the destination
        coordinate (that hop would be minimal, not a deroute).
        """
        w = self.hx.widths[dim]
        return [
            self.hx.dim_port(router_id, dim, c)
            for c in range(w)
            if c != here_coord and c != dest_coord
        ]

    # -- DOR helpers ----------------------------------------------------

    def first_unaligned_dim(
        self, here: tuple[int, ...], dest: tuple[int, ...]
    ) -> int | None:
        for d in range(self.hx.num_dims):
            if here[d] != dest[d]:
                return d
        return None

    def dor_port(
        self, router_id: int, here: tuple[int, ...], dest: tuple[int, ...]
    ) -> tuple[int, int] | None:
        """(port, dim) of the next dimension-order hop toward ``dest``."""
        d = self.first_unaligned_dim(here, dest)
        if d is None:
            return None
        return self.hx.dim_port(router_id, d, dest[d]), d
