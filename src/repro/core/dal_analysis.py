"""DAL (Dimensionally Adaptive Load-balancing) throughput-cap analysis.

The paper excludes DAL from simulation (Section 4.2): its escape-path
deadlock avoidance requires atomic queue allocation on modern high-radix
routers, which limits every VC to one packet per credit round trip.  The
maximum achievable channel throughput is then (footnote 3)::

    max_throughput = PacketSize x NumVCs / CreditRoundTrip

We reproduce that analysis — including the paper's two quoted data points for
the evaluated topology (realistic channel latencies, 8 VCs): **8%** for
single-flit packets and **68%** for packets uniformly sized 1..16 flits.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..traffic.sizes import SizeDistribution


@dataclass(frozen=True)
class DalThroughputModel:
    """Atomic-queue-allocation throughput cap for DAL.

    ``credit_round_trip`` is the cycles between a queue becoming empty
    downstream and the upstream router learning it may send the next packet.
    The paper's evaluated network has 10 m (50 ns) channels; both quoted data
    points (8% single-flit, 68% uniform 1..16) correspond to a 100-flit-time
    round trip, which is the default here.
    """

    num_vcs: int = 8
    credit_round_trip: int = 100

    def max_throughput(self, packet_size: float) -> float:
        """Fraction of channel capacity usable with atomic queue allocation."""
        if packet_size <= 0:
            raise ValueError("packet size must be positive")
        return min(1.0, packet_size * self.num_vcs / self.credit_round_trip)

    def max_throughput_dist(self, dist: SizeDistribution) -> float:
        return self.max_throughput(dist.mean)


def paper_quoted_points() -> dict[str, float]:
    """The two DAL caps quoted in Section 4.2 for the evaluated topology."""
    model = DalThroughputModel(num_vcs=8, credit_round_trip=100)
    return {
        "single_flit": model.max_throughput(1.0),  # paper: 8%
        "uniform_1_16": model.max_throughput(8.5),  # paper: 68%
    }
