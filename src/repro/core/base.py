"""Routing-algorithm interface.

Every routing algorithm — the paper's DimWAR and OmniWAR as well as the
DOR/VAL/UGAL/Clos-AD baselines — implements :class:`RoutingAlgorithm`.  At
each router, the algorithm is handed a :class:`RouteContext` describing the
packet at the head of an input VC and returns the set of *valid*
:class:`RouteCandidate` s (output port + resource class + remaining-hop
estimate).  The router then scores each candidate with the paper's weight
function ``weight = congestion x hopcount`` using locally observable state
(credits consumed downstream plus output-queue occupancy) and dispatches the
packet on the minimum-weight feasible candidate.

Resource classes are *virtual* VC indices; :class:`repro.core.vcmap.VcMap`
spreads them over the physically available VCs so that algorithms needing
fewer classes than the router has VCs use the spares for head-of-line-blocking
reduction — exactly the paper's evaluation methodology (footnote 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, Protocol, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from ..network.types import Packet
    from ..topology.base import Topology


class NoRouteError(RuntimeError):
    """No viable candidate exists for a packet at a router.

    Raised by the router when an algorithm returns an empty candidate list —
    on a pristine topology that is a bug, but under injected faults it is the
    defined way for an algorithm to report an unreachable (or
    restriction-blocked) destination instead of hanging.  The fault transient
    experiment catches it and reports the affected pair.
    """


class RouterView(Protocol):
    """The slice of router state a routing algorithm may observe.

    Everything here is *local* to the router — the paper's point is that both
    source-adaptive and incremental algorithms only ever see local congestion;
    they differ in *where along the path* they get to look.
    """

    router_id: int

    def class_congestion(self, out_port: int, vc_class: int) -> float:
        """Congestion estimate for (output port, resource class)."""
        ...

    def port_congestion(self, out_port: int) -> float:
        """Congestion estimate for an output port across all VCs."""
        ...


class RouteCandidate:
    """One routing option offered by an algorithm at one router.

    ``hops`` is the estimated number of router-to-router hops remaining on
    the path *including* the candidate hop itself; multiplied by the local
    congestion estimate it forms the paper's route weight.

    Value semantics (equality, hashing) match the frozen dataclass this
    class used to be; it is hand-rolled with ``__slots__`` because candidate
    construction is the cache-fill hot path of every routing decision and
    the frozen-dataclass ``object.__setattr__`` protocol tripled its cost.
    Treat instances as immutable — cached candidate lists are shared across
    routing decisions.
    """

    __slots__ = ("out_port", "vc_class", "hops", "deroute")

    def __init__(self, out_port: int, vc_class: int, hops: int,
                 deroute: bool = False):
        if hops < 1:
            raise ValueError("a candidate always includes at least its own hop")
        self.out_port = out_port
        self.vc_class = vc_class
        self.hops = hops
        self.deroute = deroute

    def __repr__(self) -> str:
        return (
            f"RouteCandidate(out_port={self.out_port}, "
            f"vc_class={self.vc_class}, hops={self.hops}, "
            f"deroute={self.deroute})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RouteCandidate):
            return NotImplemented
        return (
            self.out_port == other.out_port
            and self.vc_class == other.vc_class
            and self.hops == other.hops
            and self.deroute == other.deroute
        )

    def __hash__(self) -> int:
        return hash((self.out_port, self.vc_class, self.hops, self.deroute))


@dataclass
class RouteContext:
    """Everything an algorithm may use to route one packet at one router."""

    router: "RouterView"
    packet: "Packet"
    input_port: int
    input_vc_class: int  # resource class of the VC the packet arrived on
    from_terminal: bool  # True at the packet's source router


class RoutingAlgorithm:
    """Base class for routing algorithms.

    Subclasses set :attr:`num_classes` (resource classes required for deadlock
    freedom) and implement :meth:`candidates`.  ``commit`` is invoked exactly
    once per hop, when the router actually dispatches the packet on a chosen
    candidate — algorithms that carry state in the packet update it there.
    """

    #: short name used in tables and the registry
    name: str = "base"
    #: resource classes required (the "VCs Required" column of Table 1)
    num_classes: int = 1
    #: True for incremental algorithms (adaptive decision at every hop)
    incremental: bool = False
    #: True when the algorithm traverses dimensions in a fixed order
    dimension_ordered: bool = True
    #: deadlock-avoidance mechanisms used (Table 1 "Deadlock Handling")
    deadlock_handling: str = "restricted routes"
    #: per-packet state the algorithm stores (Table 1 "Packet Contents")
    packet_contents: str = "none"
    #: special router architecture requirements (Table 1)
    architecture_requirements: str = "none"
    #: True when the algorithm masks failed ports from a
    #: ``repro.faults.DegradedTopology`` in :meth:`candidates`
    fault_aware: bool = False
    #: True when deadlock freedom rests on distance classes — the VC class
    #: must advance by exactly one per hop (``VC_out = VC_in + 1``, class 0
    #: at injection).  Declared here so the repro.check sanitizer can verify
    #: the rule mechanically on every hop without knowing the algorithm.
    distance_classes: bool = False
    #: Optional per-class weights for the VC partition
    #: (:class:`repro.core.vcmap.VcMap`): algorithms whose classes are used
    #: unevenly — e.g. FTHX's rarely-entered escape classes — declare a
    #: weight per resource class so spare VCs go where traffic actually
    #: flows.  ``None`` keeps the even split.
    class_weights: "tuple[int, ...] | None" = None
    #: Optional constructive deadlock-freedom certificate: a callable
    #: ``channel_rank(router, out_port, vc_class) -> comparable`` that
    #: strictly increases along every legal channel dependency.  Verified
    #: edge-by-edge by :func:`repro.core.deadlock.verify_rank_certificate`;
    #: ``None`` means the algorithm only offers the cycle-search proof.
    channel_rank = None

    def __init__(self, topology: "Topology"):
        self.topology = topology

    # ------------------------------------------------------------------

    def injection_classes(self, packet: "Packet") -> Sequence[int]:
        """Resource classes a terminal may inject this packet on."""
        return (0,)

    def candidates(self, ctx: RouteContext) -> list[RouteCandidate]:
        """Valid routing options for the packet at this router.

        Must be non-empty whenever the packet is not at its destination
        router; the router guarantees ``ctx`` is only built in that case.
        """
        raise NotImplementedError

    def commit(self, ctx: RouteContext, chosen: RouteCandidate) -> None:
        """Called once when the router dispatches the packet on ``chosen``."""

    def cache_key(self, ctx: RouteContext, dest_router: int) -> Hashable | None:
        """Key under which :meth:`candidates` may be memoised per router.

        A non-None key asserts that the candidate list is a pure function of
        the key for this router — no per-packet state, no randomness, no
        congestion reads.  The router then caches the (immutable) candidate
        list and only re-scores congestion weights while a head packet waits.
        Stateful algorithms return None (the default) and are never cached.
        """
        return None

    def route_discipline_error(
        self, ctx: RouteContext, cand: RouteCandidate
    ) -> str | None:
        """Explain why a committed candidate violates the algorithm's VC
        discipline, or return None when it is legal.

        The repro.check sanitizer calls this on every committed route, so
        each algorithm carries its own machine-checkable model of the
        invariant its deadlock-freedom proof rests on.  The default
        implements the distance-class rule for algorithms that declare
        :attr:`distance_classes`; schemes with richer disciplines (FTHX's
        escape subnetwork, VCFree's up*/down* order) override it.
        """
        if self.distance_classes:
            expected = 0 if ctx.from_terminal else ctx.input_vc_class + 1
            if cand.vc_class != expected:
                return (
                    f"distance-class rule violated — arrived on class "
                    f"{ctx.input_vc_class} (from_terminal="
                    f"{ctx.from_terminal}) but departs on class "
                    f"{cand.vc_class}, expected {expected} "
                    f"(VC_out = VC_in + 1)"
                )
        return None

    # ------------------------------------------------------------------

    def describe(self) -> dict[str, object]:
        """Table-1 style metadata row."""
        return {
            "name": self.name,
            "dimension_ordered": self.dimension_ordered,
            "routing_style": "incremental" if self.incremental else "source",
            "vcs_required": self.num_classes,
            "deadlock_handling": self.deadlock_handling,
            "architecture_requirements": self.architecture_requirements,
            "packet_contents": self.packet_contents,
        }
