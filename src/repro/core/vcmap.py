"""Resource-class to virtual-channel mapping.

The paper's evaluation gives every routing algorithm 8 VCs; algorithms whose
deadlock-avoidance scheme needs fewer resource classes use the spare VCs to
reduce head-of-line blocking (footnote 4).  :class:`VcMap` implements that
policy: the ``num_vcs`` physical VCs are partitioned into ``num_classes``
contiguous groups as evenly as possible (earlier classes get the spare VCs
first), and the inverse map recovers the resource class from a VC id — which
is how DimWAR and OmniWAR read a packet's routing state out of nothing but
the VC it arrived on.

The groups must be *contiguous and ordered* so that the acyclic class order
proven for each algorithm carries over to concrete VC ids.

Weighted partitions: algorithms whose classes carry very different loads
(e.g. FTHX, whose two escape classes are rarely-entered insurance while
its adaptive distance classes carry everything) declare per-class weights
(:attr:`repro.core.base.RoutingAlgorithm.class_weights`).  Every class
still gets at least one VC; the spare VCs beyond one-each are distributed
proportionally to the weights by deterministic largest remainder (ties to
the lower class index), keeping the partition contiguous and ordered.
With ``weights=None`` the split is exactly the historical even partition.
"""

from __future__ import annotations


class VcMap:
    """Partition ``num_vcs`` VCs into ``num_classes`` ordered groups."""

    def __init__(self, num_classes: int, num_vcs: int,
                 weights: "tuple[int, ...] | None" = None):
        if num_classes < 1:
            raise ValueError("need at least one resource class")
        if num_vcs < num_classes:
            raise ValueError(
                f"{num_classes} resource classes cannot fit in {num_vcs} VCs"
            )
        self.num_classes = num_classes
        self.num_vcs = num_vcs
        self.weights = tuple(weights) if weights is not None else None
        sizes = self._sizes(num_classes, num_vcs, self.weights)
        self._groups: list[tuple[int, ...]] = []
        self._class_of = [0] * num_vcs
        vc = 0
        for klass, size in enumerate(sizes):
            group = tuple(range(vc, vc + size))
            self._groups.append(group)
            for v in group:
                self._class_of[v] = klass
            vc += size
        assert vc == num_vcs

    @staticmethod
    def _sizes(num_classes: int, num_vcs: int,
               weights: "tuple[int, ...] | None") -> list[int]:
        if weights is None:
            base, extra = divmod(num_vcs, num_classes)
            return [base + (1 if k < extra else 0) for k in range(num_classes)]
        if len(weights) != num_classes:
            raise ValueError(
                f"{len(weights)} class weights for {num_classes} classes"
            )
        if any(w < 1 for w in weights):
            raise ValueError("every class weight must be >= 1")
        # One VC per class is the floor; spares go by largest remainder.
        spare = num_vcs - num_classes
        total = sum(weights)
        quotas = [w * spare / total for w in weights]
        sizes = [1 + int(q) for q in quotas]
        leftovers = spare - sum(int(q) for q in quotas)
        order = sorted(
            range(num_classes), key=lambda k: (-(quotas[k] - int(quotas[k])), k)
        )
        for k in order[:leftovers]:
            sizes[k] += 1
        return sizes

    def vcs_of(self, klass: int) -> tuple[int, ...]:
        """Physical VCs backing resource class ``klass``."""
        return self._groups[klass]

    def class_of(self, vc: int) -> int:
        """Resource class a physical VC belongs to."""
        return self._class_of[vc]

    def __repr__(self) -> str:  # pragma: no cover
        return f"VcMap({self.num_classes} classes -> {self._groups})"
