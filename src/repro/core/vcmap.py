"""Resource-class to virtual-channel mapping.

The paper's evaluation gives every routing algorithm 8 VCs; algorithms whose
deadlock-avoidance scheme needs fewer resource classes use the spare VCs to
reduce head-of-line blocking (footnote 4).  :class:`VcMap` implements that
policy: the ``num_vcs`` physical VCs are partitioned into ``num_classes``
contiguous groups as evenly as possible (earlier classes get the spare VCs
first), and the inverse map recovers the resource class from a VC id — which
is how DimWAR and OmniWAR read a packet's routing state out of nothing but
the VC it arrived on.

The groups must be *contiguous and ordered* so that the acyclic class order
proven for each algorithm carries over to concrete VC ids.
"""

from __future__ import annotations


class VcMap:
    """Partition ``num_vcs`` VCs into ``num_classes`` ordered groups."""

    def __init__(self, num_classes: int, num_vcs: int):
        if num_classes < 1:
            raise ValueError("need at least one resource class")
        if num_vcs < num_classes:
            raise ValueError(
                f"{num_classes} resource classes cannot fit in {num_vcs} VCs"
            )
        self.num_classes = num_classes
        self.num_vcs = num_vcs
        base, extra = divmod(num_vcs, num_classes)
        self._groups: list[tuple[int, ...]] = []
        self._class_of = [0] * num_vcs
        vc = 0
        for klass in range(num_classes):
            size = base + (1 if klass < extra else 0)
            group = tuple(range(vc, vc + size))
            self._groups.append(group)
            for v in group:
                self._class_of[v] = klass
            vc += size
        assert vc == num_vcs

    def vcs_of(self, klass: int) -> tuple[int, ...]:
        """Physical VCs backing resource class ``klass``."""
        return self._groups[klass]

    def class_of(self, vc: int) -> int:
        """Resource class a physical VC belongs to."""
        return self._class_of[vc]

    def __repr__(self) -> str:  # pragma: no cover
        return f"VcMap({self.num_classes} classes -> {self._groups})"
