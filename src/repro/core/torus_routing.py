"""Dimension-order routing for torus and mesh networks (Section 2.1).

The paper's background taxonomy in executable form:

* :class:`MeshDOR` — restricted routes alone suffice: DOR on a mesh has no
  cyclic channel dependencies and needs a **single** resource class;
* :class:`TorusDOR` — the torus's wraparound rings add structural cycles;
  **dateline resource classes** break them: a packet starts each ring on
  class 0 and moves to class 1 when (and after) it crosses the ring's
  dateline (the wrap link), so the dependency chain inside every ring is
  acyclic.  Two classes suffice because the dimension order lets them be
  reused ring after ring — precisely the reuse trick DimWAR generalizes to
  HyperX deroutes (Section 5.1).

Both are verified mechanically by the channel-dependency checker in
:mod:`repro.core.deadlock`.
"""

from __future__ import annotations

from ..topology.torus import Torus
from .base import RouteCandidate, RouteContext, RoutingAlgorithm


class _TorusBase(RoutingAlgorithm):
    def __init__(self, topology: Torus):
        if not isinstance(topology, Torus):
            raise TypeError(f"{type(self).__name__} requires a Torus/Mesh topology")
        super().__init__(topology)
        self.torus: Torus = topology

    def dest_router(self, packet) -> int:
        return packet.dst_terminal // self.torus.terminals_per_router

    def _next_hop(self, rid: int, dest: tuple[int, ...]) -> tuple[int, int, bool, int]:
        """(dim, port, crosses_dateline, remaining_hops) of the DOR hop."""
        t = self.torus
        here = t.coords(rid)
        remaining = sum(
            t.dim_distance(d, a, b) for d, (a, b) in enumerate(zip(here, dest))
        )
        for d in range(t.num_dims):
            if here[d] == dest[d]:
                continue
            direction = t.dim_direction(d, here[d], dest[d])
            port = t.dir_port(rid, d, direction)
            w = t.widths[d]
            crosses = t.wrap and (
                (direction == 1 and here[d] == w - 1)
                or (direction == -1 and here[d] == 0)
            )
            return d, port, crosses, remaining
        raise AssertionError("never called at the destination router")


class MeshDOR(_TorusBase):
    """DOR on a mesh: restricted routes, one resource class."""

    name = "Mesh-DOR"
    num_classes = 1
    incremental = False
    dimension_ordered = True
    deadlock_handling = "restricted routes"
    packet_contents = "none"

    def __init__(self, topology: Torus):
        super().__init__(topology)
        if topology.wrap:
            raise ValueError(
                "MeshDOR on a wrapped torus would deadlock; use TorusDOR"
            )

    def candidates(self, ctx: RouteContext) -> list[RouteCandidate]:
        _, port, _, remaining = self._next_hop(
            ctx.router.router_id, self.torus.coords(self.dest_router(ctx.packet))
        )
        return [RouteCandidate(out_port=port, vc_class=0, hops=remaining)]


class TorusDOR(_TorusBase):
    """DOR on a torus with dateline resource classes (2 VCs).

    The class the packet is on encodes everything: class 0 = has not yet
    crossed the current ring's dateline, class 1 = has.  Entering a new
    dimension resets to class 0 — detectable from the input port's
    dimension, with no packet state (the property DimWAR inherits).
    """

    name = "Torus-DOR"
    num_classes = 2
    incremental = False
    dimension_ordered = True
    deadlock_handling = "restricted routes & resource classes (dateline)"
    packet_contents = "none"

    def __init__(self, topology: Torus):
        super().__init__(topology)
        if not topology.wrap:
            raise ValueError("use MeshDOR on meshes (saves a resource class)")

    def candidates(self, ctx: RouteContext) -> list[RouteCandidate]:
        t = self.torus
        rid = ctx.router.router_id
        dest = t.coords(self.dest_router(ctx.packet))
        dim, port, crosses, remaining = self._next_hop(rid, dest)
        if ctx.from_terminal:
            in_ring_class = 0
        else:
            in_dim, _, _ = t.port_info(rid, ctx.input_port)
            in_ring_class = ctx.input_vc_class if in_dim == dim else 0
        klass = 1 if (crosses or in_ring_class == 1) else 0
        return [RouteCandidate(out_port=port, vc_class=klass, hops=remaining)]
