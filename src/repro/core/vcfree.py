"""VCFree — deadlock-free full-mesh routing without virtual channels.

Implements the discipline of "Deadlock-free routing for Full-mesh networks
without using Virtual Channels" (Cano, Camarero, Martínez, Beivide —
HOTI'25, arXiv 2510.14730) as a HyperX routing algorithm.  Each HyperX
dimension is a full mesh; VCFree resolves dimensions in a fixed order
(like DOR) and, inside the current dimension, restricts paths to the
*unimodal* ``up* down*`` shape: a packet may take any number of hops to
strictly **higher** coordinates, then any number of hops to strictly
**lower** coordinates — but once it has moved down it may never move up
again.  Equivalently, an intermediate coordinate ``k`` is legal only when
``k >= min(here, dest)``.

That single ordering constraint makes the channel-dependency graph acyclic
with **one** resource class — no virtual-channel separation at all.  Rank
every channel of dimension ``d`` (width ``W``) from coordinate ``a`` to
``b`` as::

    rank = (d, b)          if b > a     ("up" channel)
    rank = (d, 2W - b)     if b < a     ("down" channel)

Up hops strictly increase the target coordinate, every continuation after
a down hop strictly decreases it, and turning from up to down jumps from
the ``[0, W)`` band into the ``(W, 2W]`` band — so every legal dependency
strictly increases the rank, and a cycle is impossible.  Dimension order
handles the cross-dimension edges.  The certificate is verified
mechanically by :func:`repro.core.deadlock.verify_rank_certificate`.

The scheme is adaptive: at every hop the minimal (aligning) hop competes
with every discipline-legal deroute on congestion weight.  All routing
state is recovered from the input port — the direction of the previous
hop within the current dimension tells the router whether the packet is
still in its up phase — so the packet format carries nothing and the
candidate list is a pure function of ``(destination, phase)``.

Behaviour under faults (constructed on a ``DegradedTopology``): dead
ports are masked out of the legal set, and deroutes are filtered to
survivors whose onward aligning hop is also alive.  Because the
discipline forbids leaving the current dimension and (after a down hop)
forbids moving back up, a fault pattern can exhaust the legal set even on
a connected network — then the router raises
:class:`~repro.core.base.NoRouteError` (reported, never a hang).  That
narrower escape envelope is the price of needing zero VCs; the
head-to-head driver (:mod:`repro.experiments.fault_compare`) measures it
against FTHX and the masked-port baselines.
"""

from __future__ import annotations

from .base import RouteCandidate, RouteContext
from .hyperx_base import HyperXRouting

#: phase of a packet inside its current dimension
_FRESH = 0  # entered the dimension this hop: both directions legal
_UP = 1     # last hop moved up: may continue up or turn down
_DOWN = 2   # last hop moved down: may only continue down


class VCFreeRouting(HyperXRouting):
    name = "VCFree"
    num_classes = 1
    incremental = True
    dimension_ordered = True
    deadlock_handling = "restricted routes (up*/down* channel order)"
    packet_contents = "none"
    fault_aware = True
    distance_classes = False

    # -- discipline state ----------------------------------------------

    def phase(self, ctx: RouteContext, dim: int, here_coord: int) -> int:
        """Unimodal phase of the packet inside ``dim``, from the input port.

        A packet is *fresh* at its source router and whenever the previous
        hop travelled a different dimension (dimension order: the previous
        dimension was just aligned).  Otherwise the previous hop was a
        lateral move within ``dim`` and its direction — read off the
        upstream coordinate the input port connects to — fixes the phase.
        """
        if ctx.from_terminal:
            return _FRESH
        p = ctx.input_port
        if p >= self.hx.num_router_ports or self._port_dim_tab[p] != dim:
            return _FRESH
        idx = p - self.hx._dim_offset[dim]
        prev = idx if idx < here_coord else idx + 1
        return _UP if here_coord > prev else _DOWN

    # -- RoutingAlgorithm interface ------------------------------------

    def cache_key(self, ctx: RouteContext, dest_router: int):
        # The candidate list depends only on the destination and the
        # unimodal phase (the current dimension and coordinate are fixed
        # per router; faults invalidate every cache on their epoch).
        here = self.here(ctx)
        d = self.first_unaligned_dim(here, self.hx.coords(dest_router))
        assert d is not None
        return (dest_router, self.phase(ctx, d, here[d]))

    def candidates(self, ctx: RouteContext) -> list[RouteCandidate]:
        hx = self.hx
        rid = ctx.router.router_id
        here = hx.coords(rid)
        dest = hx.coords(ctx.packet.dst_terminal // self._tpr)
        d = self.first_unaligned_dim(here, dest)
        assert d is not None, "router never routes packets already at destination"
        h, t = here[d], dest[d]
        ph = self.phase(ctx, d, h)
        remaining = sum(1 for a, b in zip(here, dest) if a != b)

        # Discipline-legal lateral coordinates in dimension d.
        if ph == _DOWN:
            # only continue downward, never below the destination
            lo, hi = t + 1, h
            min_ok = t < h
        else:
            # fresh/up: anything strictly above min(here, dest) — up hops,
            # or down hops that a down* continuation can still finish
            lo, hi = min(h, t) + 1, hx.widths[d]
            min_ok = True

        f = self.routing_faults(rid)
        cands: list[RouteCandidate] = []
        append = cands.append
        min_port = self._min_port_tab[d][h][t]
        if min_ok:
            if f is None or (rid, min_port) not in f.failed_ports:
                append(RouteCandidate(min_port, 0, remaining))
            else:
                f.masked_candidates += 1
        deroute_hops = remaining + 1
        if f is None:
            for c in range(lo, hi):
                if c == h or c == t:
                    continue
                append(RouteCandidate(hx.dim_port(rid, d, c), 0,
                                      deroute_hops, True))
            return cands
        for c in range(lo, hi):
            if c == h or c == t:
                continue
            port = hx.dim_port(rid, d, c)
            if (rid, port) in f.failed_ports:
                f.masked_candidates += 1
                continue
            nbr = hx.neighbor(rid, d, c)
            onward = hx.dim_port(nbr, d, t)
            if (nbr, onward) in f.failed_ports:
                f.masked_candidates += 1
                continue
            append(RouteCandidate(port, 0, deroute_hops, True))
        return cands  # empty => NoRouteError (unreachable under the discipline)

    # -- verification hooks --------------------------------------------

    def route_discipline_error(self, ctx: RouteContext, cand) -> str | None:
        """The sanitizer's model of the VC-free invariant.

        Legal hops use the single resource class, stay in the first
        unaligned dimension (dimension order), never move up after a down
        hop, and never drop below the destination coordinate.
        """
        if cand.vc_class != 0:
            return (
                f"VC-free discipline uses the single class 0, "
                f"but the candidate declared class {cand.vc_class}"
            )
        hx = self.hx
        here = self.here(ctx)
        dest = self.dest_coords(ctx.packet)
        d = self.first_unaligned_dim(here, dest)
        out_dim = self._port_dim_tab[cand.out_port]
        if out_dim != d:
            return (
                f"dimension order violated: first unaligned dimension is "
                f"{d} but the hop travels dimension {out_dim}"
            )
        h, t = here[d], dest[d]
        idx = cand.out_port - hx._dim_offset[d]
        c = idx if idx < h else idx + 1
        if c != t and c < min(h, t):
            return (
                f"hop to coordinate {c} drops below min(here={h}, dest={t}) "
                f"in dimension {d} — a down* continuation could never "
                f"recover without an up hop"
            )
        if self.phase(ctx, d, h) == _DOWN and c > h:
            return (
                f"up hop to coordinate {c} after a down hop (here={h}) in "
                f"dimension {d}: the up*/down* order admits no second rise"
            )
        return None

    def channel_rank(self, router: int, port: int, klass: int):
        """Acyclicity certificate: every legal dependency strictly
        increases this rank (see the module docstring for the argument)."""
        d = self._port_dim_tab[port]
        a = self.hx.coords(router)[d]
        idx = port - self.hx._dim_offset[d]
        b = idx if idx < a else idx + 1
        intra = b if b > a else 2 * self.hx.widths[d] - b
        return (d, intra)
