"""Algorithm registry: name -> factory, plus the paper's Table 1 / Table 2.

The registry is what the sweep driver, the benchmarks, and the examples use
to instantiate routing algorithms by name.  It also carries the metadata
needed to regenerate Table 1 (implementation comparison) — including DAL,
which is analysed but, as in the paper, never simulated.
"""

from __future__ import annotations

from typing import Callable

from ..topology.hyperx import HyperX
from .base import RoutingAlgorithm
from .closad import ClosAD
from .dimwar import DimWAR
from .dor import DimensionOrderRouting
from .fthx import FTHX
from .minad import MinAdaptive
from .minimal_oblivious import RandomDimOrder, Romm
from .omniwar import OmniWAR
from .ugal import Ugal
from .valiant import Valiant
from .vcfree import VCFreeRouting

Factory = Callable[[HyperX], RoutingAlgorithm]

_FACTORIES: dict[str, Factory] = {
    "DOR": DimensionOrderRouting,
    "VAL": Valiant,
    "UGAL": Ugal,
    "UGAL+": ClosAD,
    "MIN-AD": MinAdaptive,
    "ROMM": Romm,
    "O1Turn": RandomDimOrder,
    "DimWAR": DimWAR,
    "OmniWAR": OmniWAR,
    "OmniWAR-b2b": lambda topo: OmniWAR(topo, restrict_back_to_back=True),
    "FTHX": FTHX,
    "VCFree": VCFreeRouting,
}

#: the paper's Figure 6 / Figure 8 line-up (Table 2)
PAPER_ALGORITHMS = ("DOR", "VAL", "UGAL", "UGAL+", "DimWAR", "OmniWAR")

#: Table 2 descriptions
ALGORITHM_DESCRIPTIONS: dict[str, str] = {
    "DOR": "Dimension Order Routing",
    "VAL": "Valiant's Randomized Routing",
    "UGAL": "Universal Global Adaptive Load-balancing",
    "UGAL+": "UGAL optimized for HyperX (Clos-AD without seq. allocation)",
    "MIN-AD": "Minimal Adaptive Routing",
    "ROMM": "Randomized Oblivious Minimal (two-phase, minimal quadrant)",
    "O1Turn": "Per-packet random dimension order, minimal oblivious",
    "DimWAR": "Dimensionally-ordered Weighted Adaptive Routing (Sec 5.1)",
    "OmniWAR": "Omni-dimensional Weighted Adaptive Routing (Sec 5.2)",
    "OmniWAR-b2b": "OmniWAR with back-to-back same-dimension deroutes restricted",
    "FTHX": "Fault-tolerant adaptive + escape subnetwork (arXiv 2404.04315)",
    "VCFree": "VC-free deadlock-free full-mesh routing (HOTI'25)",
}


def algorithm_names() -> list[str]:
    return sorted(_FACTORIES)


def make_algorithm(name: str, topology: HyperX, **kwargs) -> RoutingAlgorithm:
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {name!r}; choose from {algorithm_names()}"
        ) from None
    if kwargs:
        if name in ("OmniWAR", "OmniWAR-b2b"):
            return OmniWAR(topology, **kwargs)
        if name == "UGAL":
            return Ugal(topology, **kwargs)
        if name == "FTHX":
            return FTHX(topology, **kwargs)
        raise ValueError(f"{name} takes no extra arguments")
    return factory(topology)


def fault_capable_names() -> list[str]:
    """Registered algorithms the fault experiments accept.

    Fault-capable means the algorithm masks failed ports in
    ``candidates()`` (``fault_aware``) when constructed on a
    ``DegradedTopology`` — the precondition of every ``repro faults``
    run.  Probed on a tiny throwaway topology so the list can never
    drift from the registry.
    """
    from ..faults.degraded import DegradedTopology

    probe = DegradedTopology(HyperX((2, 2), 1))
    return [
        name for name in algorithm_names()
        if make_algorithm(name, probe).fault_aware
    ]


def table1_rows(num_dims: int = 3) -> list[dict[str, object]]:
    """Regenerate the paper's Table 1 (implementation comparison).

    ``N`` in the OmniWAR row is the number of network dimensions; ``M`` its
    deroute budget.  DAL is included from its published description — it is
    analysed (:mod:`repro.core.dal_analysis`) but not simulatable without
    escape paths.
    """
    hx = HyperX((2,) * num_dims, 1)
    rows = []
    for name in ("UGAL", "UGAL+", "DimWAR", "OmniWAR"):
        algo = make_algorithm(name, hx)
        row = algo.describe()
        if name == "UGAL+":
            row["name"] = "Clos-AD"
            row["architecture_requirements"] = "seq. alloc."
        rows.append(row)
    rows.insert(
        2,
        {
            "name": "DAL",
            "dimension_ordered": False,
            "routing_style": "incremental",
            "vcs_required": "1+1e",
            "deadlock_handling": "escape paths",
            "architecture_requirements": "escape paths",
            "packet_contents": "N-bit field",
        },
    )
    return rows
