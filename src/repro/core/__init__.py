"""Routing algorithms: the paper's DimWAR and OmniWAR plus all baselines."""

from .base import RouteCandidate, RouteContext, RoutingAlgorithm
from .closad import ClosAD
from .dimwar import DimWAR
from .dor import DimensionOrderRouting
from .fthx import FTHX
from .minad import MinAdaptive
from .omniwar import OmniWAR
from .registry import (
    PAPER_ALGORITHMS,
    algorithm_names,
    fault_capable_names,
    make_algorithm,
    table1_rows,
)
from .vcfree import VCFreeRouting
from .tables import TableRouting, compile_tables, full_table_geometry, optimized_table_geometry
from .torus_routing import MeshDOR, TorusDOR
from .ugal import Ugal
from .valiant import Valiant

__all__ = [
    "RoutingAlgorithm",
    "RouteContext",
    "RouteCandidate",
    "DimensionOrderRouting",
    "Valiant",
    "Ugal",
    "ClosAD",
    "MinAdaptive",
    "DimWAR",
    "OmniWAR",
    "FTHX",
    "VCFreeRouting",
    "make_algorithm",
    "algorithm_names",
    "fault_capable_names",
    "table1_rows",
    "PAPER_ALGORITHMS",
    "TableRouting",
    "compile_tables",
    "full_table_geometry",
    "optimized_table_geometry",
    "MeshDOR",
    "TorusDOR",
]
