"""Congestion estimation and route weighting.

The paper scores every valid route with ``weight = congestion x hopcount``
(Sections 5.1 step 3 and 5.2 step 4), where congestion is *locally detected*:
a router can observe how many credits it has consumed toward each downstream
input buffer (i.e. how full the next hop's buffer is, including flits in
flight) and how many flits are staged in its own output queues.

Three estimator modes are provided (the choice is an ablation bench):

``credit``        downstream occupancy only (credits consumed),
``queue``         local output-queue occupancy only,
``credit_queue``  their sum — the default, closest to what a real high-radix
                  router can observe and what SuperSim-style models use.

All modes normalize occupancy by the buffer depth and the class-group width,
yielding a congestion value of ~0 for an idle port and ~1 for a full
downstream buffer.  The normalization sets the adaptive threshold: a deroute
(hops+1) wins over a congested minimal hop only when the minimal candidate's
buffers are substantially occupied — one in-flight packet must not trigger
global load balancing (the paper's bipolar-UGAL critique cuts both ways).
"""

from __future__ import annotations

from typing import Callable, Sequence

#: signature: (occupied_downstream_slots, staged_output_flits, num_vcs_in_group,
#:             buffer_depth) -> congestion estimate
Estimator = Callable[[int, int, int, int], float]


def _credit(occupied: int, staged: int, group: int, depth: int) -> float:
    return occupied / (group * depth)


def _queue(occupied: int, staged: int, group: int, depth: int) -> float:
    return staged / (group * depth)


def _credit_queue(occupied: int, staged: int, group: int, depth: int) -> float:
    return (occupied + staged) / (group * depth)


_MODES: dict[str, Estimator] = {
    "credit": _credit,
    "queue": _queue,
    "credit_queue": _credit_queue,
}


def get_estimator(mode: str) -> Estimator:
    try:
        return _MODES[mode]
    except KeyError:
        raise ValueError(
            f"unknown congestion mode {mode!r}; choose from {sorted(_MODES)}"
        ) from None


def estimator_modes() -> list[str]:
    return sorted(_MODES)


def route_weight(congestion: float, hops: int, bias: float = 1.0) -> float:
    """The paper's weight: estimated latency to destination.

    ``bias`` adds one flit-time of base latency per hop so that a completely
    idle network still prefers shorter paths (congestion of 0 would otherwise
    make every candidate weight 0 and the choice arbitrary).
    """
    return (congestion + bias) * hops


def pick_min_weight(
    weights: Sequence[float], tiebreak: Sequence[float] | None = None
) -> int:
    """Index of the minimum weight; optional secondary key for ties."""
    best = 0
    for i in range(1, len(weights)):
        if weights[i] < weights[best] or (
            weights[i] == weights[best]
            and tiebreak is not None
            and tiebreak[i] < tiebreak[best]
        ):
            best = i
    return best
