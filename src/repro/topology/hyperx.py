"""HyperX topology (Ahn et al., SC '09).

A HyperX is an L-dimensional integer lattice in which every dimension is
*fully connected*: a router at coordinate ``c`` has a direct channel to every
router that differs from it in exactly one coordinate.  The HyperX family
generalizes the HyperCube (all widths 2) and the Flattened Butterfly.

The paper evaluates a regular 3-D HyperX with widths ``(8, 8, 8)`` and 8
terminals per router (4,096 nodes).  This class supports arbitrary per-
dimension widths and terminal counts.

Port layout per router (used consistently by the simulator and the routing
algorithms)::

    ports [0 .. sum(w_d - 1))           router-to-router, dimension-major
    ports [sum(w_d - 1) .. radix)       terminal ports

Within dimension ``d`` the ports are ordered by target coordinate, skipping
the router's own coordinate.
"""

from __future__ import annotations

import itertools
from functools import reduce

from .base import PortPeer, RouterPort, Topology


class HyperX(Topology):
    """A general HyperX network.

    Parameters
    ----------
    widths:
        Per-dimension widths ``(S_1, ..., S_L)``; each must be >= 2.
    terminals_per_router:
        Number of endpoints attached to every router (``T`` in the paper).
    """

    name = "hyperx"

    def __init__(self, widths: tuple[int, ...] | list[int], terminals_per_router: int):
        widths = tuple(int(w) for w in widths)
        if not widths:
            raise ValueError("HyperX needs at least one dimension")
        if any(w < 2 for w in widths):
            raise ValueError(f"every dimension width must be >= 2, got {widths}")
        if terminals_per_router < 1:
            raise ValueError("terminals_per_router must be >= 1")
        self.widths = widths
        self.terminals_per_router = int(terminals_per_router)
        self.num_dims = len(widths)
        self._num_routers = reduce(lambda a, b: a * b, widths, 1)
        # Port offset of each dimension's port block.
        self._dim_offset: list[int] = []
        off = 0
        for w in widths:
            self._dim_offset.append(off)
            off += w - 1
        self._router_ports = off  # total router-facing ports per router
        self._radix = off + self.terminals_per_router
        # Mixed-radix strides for id <-> coordinate conversion (dim 0 fastest).
        self._strides: list[int] = []
        s = 1
        for w in widths:
            self._strides.append(s)
            s *= w
        # Coordinate cache: routing algorithms call coords() on every hop.
        self._coords_cache: list[tuple[int, ...]] | None = None
        if self._num_routers <= 1 << 20:
            self._coords_cache = [self._coords_slow(r) for r in range(self._num_routers)]

    # ------------------------------------------------------------------
    # Identity / coordinates
    # ------------------------------------------------------------------

    @property
    def num_routers(self) -> int:
        return self._num_routers

    @property
    def num_terminals(self) -> int:
        return self._num_routers * self.terminals_per_router

    @property
    def router_radix(self) -> int:
        """Radix of every router (HyperX is router-regular)."""
        return self._radix

    @property
    def num_router_ports(self) -> int:
        """Number of router-facing ports on each router."""
        return self._router_ports

    def radix(self, router: int) -> int:
        return self._radix

    def coords(self, router: int) -> tuple[int, ...]:
        """Coordinates of ``router`` (dimension 0 varies fastest)."""
        if self._coords_cache is not None:
            return self._coords_cache[router]
        return self._coords_slow(router)

    def _coords_slow(self, router: int) -> tuple[int, ...]:
        out = []
        for w in self.widths:
            out.append(router % w)
            router //= w
        return tuple(out)

    def router_id(self, coords: tuple[int, ...] | list[int]) -> int:
        if len(coords) != self.num_dims:
            raise ValueError(f"expected {self.num_dims} coordinates, got {coords}")
        rid = 0
        for c, w, s in zip(coords, self.widths, self._strides):
            if not 0 <= c < w:
                raise ValueError(f"coordinate {c} out of range [0,{w})")
            rid += c * s
        return rid

    def all_coords(self):
        """Iterate the coordinates of every router (in router-id order)."""
        return (
            tuple(reversed(c))
            for c in itertools.product(*[range(w) for w in reversed(self.widths)])
        )

    # ------------------------------------------------------------------
    # Ports
    # ------------------------------------------------------------------

    def dim_port(self, router: int, dim: int, target_coord: int) -> int:
        """Port on ``router`` leading to ``target_coord`` in dimension ``dim``."""
        own = self.coords(router)[dim]
        if target_coord == own:
            raise ValueError("no self port: target coordinate equals own")
        if not 0 <= target_coord < self.widths[dim]:
            raise ValueError(f"target coordinate {target_coord} out of range")
        idx = target_coord if target_coord < own else target_coord - 1
        return self._dim_offset[dim] + idx

    def port_target(self, router: int, port: int) -> tuple[int, int]:
        """Inverse of :meth:`dim_port`: map a router-facing port to (dim, coord)."""
        if not 0 <= port < self._router_ports:
            raise ValueError(f"port {port} is not a router-facing port")
        for dim in range(self.num_dims - 1, -1, -1):
            if port >= self._dim_offset[dim]:
                idx = port - self._dim_offset[dim]
                own = self.coords(router)[dim]
                coord = idx if idx < own else idx + 1
                return dim, coord
        raise AssertionError("unreachable")

    def port_dim(self, router: int, port: int) -> int:
        """Dimension a router-facing port travels in."""
        return self.port_target(router, port)[0]

    def terminal_port(self, local_terminal: int) -> int:
        """Port index of the ``local_terminal``-th terminal on any router."""
        if not 0 <= local_terminal < self.terminals_per_router:
            raise ValueError("local terminal index out of range")
        return self._router_ports + local_terminal

    def is_terminal_port(self, port: int) -> bool:
        return port >= self._router_ports

    def peer(self, router: int, port: int) -> PortPeer:
        if port >= self._radix or port < 0:
            raise ValueError(f"port {port} out of range for radix {self._radix}")
        if self.is_terminal_port(port):
            local = port - self._router_ports
            return PortPeer(terminal=router * self.terminals_per_router + local)
        dim, coord = self.port_target(router, port)
        c = list(self.coords(router))
        src_coord = c[dim]
        c[dim] = coord
        nbr = self.router_id(c)
        back = self.dim_port(nbr, dim, src_coord)
        return PortPeer(router_port=RouterPort(nbr, back))

    def terminal_attachment(self, terminal: int) -> RouterPort:
        if not 0 <= terminal < self.num_terminals:
            raise ValueError("terminal id out of range")
        router, local = divmod(terminal, self.terminals_per_router)
        return RouterPort(router, self.terminal_port(local))

    def neighbor(self, router: int, dim: int, coord: int) -> int:
        """Id of the router at ``coord`` in dimension ``dim`` from ``router``."""
        own = self.coords(router)[dim]
        if coord == own:
            raise ValueError("neighbor coordinate equals own coordinate")
        if not 0 <= coord < self.widths[dim]:
            raise ValueError(f"coordinate {coord} out of range")
        return router + (coord - own) * self._strides[dim]

    # ------------------------------------------------------------------
    # Distance / routing helpers
    # ------------------------------------------------------------------

    def min_hops(self, src_router: int, dst_router: int) -> int:
        a = self.coords(src_router)
        b = self.coords(dst_router)
        return sum(1 for x, y in zip(a, b) if x != y)

    def unaligned_dims(
        self, coords: tuple[int, ...], dest: tuple[int, ...]
    ) -> list[int]:
        """Dimensions in which ``coords`` differs from ``dest``."""
        return [d for d in range(self.num_dims) if coords[d] != dest[d]]

    def bisection_channels(self, dim: int) -> int:
        """Directed channels crossing the even/odd bisection of ``dim``.

        For a fully connected dimension of width ``w`` split into two halves of
        ``w/2`` routers each, ``(w/2)^2`` channels cross in each direction per
        instance of the dimension.
        """
        w = self.widths[dim]
        half = w // 2
        other = self._num_routers // w
        return half * (w - half) * other

    def relative_bisection_bandwidth(self, dim: int) -> float:
        """Bisection channel bandwidth over injection bandwidth of one half.

        The paper's 8-wide dimension with 8 terminals per router yields 0.5
        (hence "assuming the bisection capacity of the network is 50%").
        """
        w = self.widths[dim]
        half = w // 2
        crossing = half * (w - half)  # per dimension instance, one direction
        injecting = half * self.terminals_per_router
        return crossing / injecting

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HyperX(widths={self.widths}, "
            f"terminals_per_router={self.terminals_per_router})"
        )


def regular_hyperx(dims: int, width: int, terminals_per_router: int) -> HyperX:
    """Convenience constructor for a regular HyperX (all widths equal)."""
    return HyperX((width,) * dims, terminals_per_router)


def paper_hyperx() -> HyperX:
    """The paper's evaluation network: 8x8x8 routers, 8 terminals each (4,096
    nodes, radix-29 routers)."""
    return regular_hyperx(3, 8, 8)
