"""Topology abstraction used by the network builder and routing algorithms.

A topology describes routers, the ports on each router, the router-to-router
channels, and the attachment of terminals (network endpoints) to routers.
Routers are identified by dense integer ids ``0..num_routers-1``; terminals by
dense integer ids ``0..num_terminals-1``.  Each router exposes ``radix(r)``
ports numbered ``0..radix(r)-1``; a port either connects to a peer router port
or to a terminal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class RouterPort:
    """Identifies one port of one router."""

    router: int
    port: int


@dataclass(frozen=True)
class PortPeer:
    """What sits on the far side of a router port.

    Exactly one of ``router_port`` / ``terminal`` is set.
    """

    router_port: RouterPort | None = None
    terminal: int | None = None

    @property
    def is_terminal(self) -> bool:
        return self.terminal is not None

    @property
    def is_router(self) -> bool:
        return self.router_port is not None

    @property
    def is_missing(self) -> bool:
        """Neither router nor terminal: a masked (faulted) port.

        Pristine topologies never return missing peers; only the
        ``repro.faults.DegradedTopology`` wrapper does, for failed ports.
        """
        return self.router_port is None and self.terminal is None


class Topology:
    """Base class for all topologies.

    Subclasses must implement :meth:`num_routers`, :meth:`num_terminals`,
    :meth:`radix`, :meth:`peer`, :meth:`terminal_attachment`, and
    :meth:`min_hops`.
    """

    name: str = "topology"

    @property
    def num_routers(self) -> int:
        raise NotImplementedError

    @property
    def num_terminals(self) -> int:
        raise NotImplementedError

    def radix(self, router: int) -> int:
        """Number of ports on ``router`` (router-facing plus terminal-facing)."""
        raise NotImplementedError

    def peer(self, router: int, port: int) -> PortPeer:
        """Return the peer of port ``port`` on ``router``."""
        raise NotImplementedError

    def terminal_attachment(self, terminal: int) -> RouterPort:
        """Return the (router, port) a terminal is cabled to."""
        raise NotImplementedError

    def min_hops(self, src_router: int, dst_router: int) -> int:
        """Minimal router-to-router hop count (0 when ``src == dst``)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Derived helpers shared by all topologies.
    # ------------------------------------------------------------------

    def router_of_terminal(self, terminal: int) -> int:
        return self.terminal_attachment(terminal).router

    def router_ports(self, router: int) -> Iterator[tuple[int, PortPeer]]:
        """Iterate ``(port, peer)`` pairs for every port of ``router``."""
        for port in range(self.radix(router)):
            yield port, self.peer(router, port)

    def router_channels(self) -> Iterator[tuple[RouterPort, RouterPort]]:
        """Iterate all directed router-to-router channels as (src, dst) ports."""
        for r in range(self.num_routers):
            for port, peer in self.router_ports(r):
                if peer.is_router:
                    yield RouterPort(r, port), peer.router_port

    def diameter(self) -> int:
        """Network diameter in router-to-router hops (brute force; small nets)."""
        best = 0
        for a in range(self.num_routers):
            for b in range(self.num_routers):
                best = max(best, self.min_hops(a, b))
        return best

    def validate(self) -> None:
        """Check structural invariants; raises ``AssertionError`` on violation.

        * every router port has a peer (router or terminal — never missing),
        * peering is bidirectionally symmetric: ``peer(peer(r, p))`` round-
          trips, peers are in range, and no port loops back to its own router,
        * every terminal is attached to a router port that points back at it,
        * terminal ids are dense.
        """
        for r in range(self.num_routers):
            for port, peer in self.router_ports(r):
                assert peer.is_router or peer.is_terminal, (
                    f"router {r} port {port} has no peer"
                )
                if peer.is_router:
                    rp = peer.router_port
                    assert 0 <= rp.router < self.num_routers, (
                        f"peer router {rp.router} of router {r} port {port} "
                        f"out of range"
                    )
                    assert 0 <= rp.port < self.radix(rp.router), (
                        f"peer port {rp.port} of router {r} port {port} "
                        f"out of range"
                    )
                    assert rp.router != r, (
                        f"router {r} port {port} loops back to itself"
                    )
                    back = self.peer(rp.router, rp.port)
                    assert back.is_router, (
                        f"asymmetric channel at router {r} port {port}"
                    )
                    assert back.router_port == RouterPort(r, port), (
                        f"peer of peer mismatch at router {r} port {port}"
                    )
                else:
                    t = peer.terminal
                    att = self.terminal_attachment(t)
                    assert att == RouterPort(r, port), (
                        f"terminal {t} attachment mismatch"
                    )
        for t in range(self.num_terminals):
            att = self.terminal_attachment(t)
            peer = self.peer(att.router, att.port)
            assert peer.is_terminal and peer.terminal == t, (
                f"terminal {t} not found at its attachment"
            )
