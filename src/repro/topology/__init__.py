"""Topologies: HyperX (the paper's subject), Dragonfly and fat tree (the
Figure 4 comparison baselines), and the scalability models of Figure 2."""

from .base import PortPeer, RouterPort, Topology
from .dragonfly import Dragonfly, balanced_dragonfly
from .fattree import FatTree
from .hyperx import HyperX, paper_hyperx, regular_hyperx
from .torus import Torus, mesh
from .scalability import (
    dragonfly_max_nodes,
    fattree_max_nodes,
    figure2_points,
    figure2_table,
    hyperx_max_nodes,
    slimfly_max_nodes,
)

__all__ = [
    "Topology",
    "RouterPort",
    "PortPeer",
    "HyperX",
    "regular_hyperx",
    "paper_hyperx",
    "Dragonfly",
    "balanced_dragonfly",
    "FatTree",
    "Torus",
    "mesh",
    "hyperx_max_nodes",
    "dragonfly_max_nodes",
    "fattree_max_nodes",
    "slimfly_max_nodes",
    "figure2_points",
    "figure2_table",
]
