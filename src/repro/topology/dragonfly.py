"""Dragonfly topology (Kim, Dally, Scott, Abts — ISCA '08).

Routers are grouped; routers within a group are fully connected by *local*
channels, and each router drives ``h`` *global* channels to other groups.  A
packet's minimal path is local-global-local (diameter 3).

Parameters (canonical balanced sizing ``a = 2p = 2h``):

``p``  terminals per router,
``a``  routers per group,
``h``  global channels per router,
``g``  number of groups; this implementation builds the canonical
       maximum-size Dragonfly ``g = a*h + 1``.

Global channels use the *relative* arrangement: global channel ``j`` of group
``G`` (``j = local*h + k``) connects to group ``(G + j + 1) mod g``, which
pairs bijectively with channel ``a*h - 1 - j`` of the destination group.

Port layout per router: ``[0, a-1)`` local, ``[a-1, a-1+h)`` global,
``[a-1+h, radix)`` terminals.

This is the comparison baseline of the paper's Figure 4 (27-point stencil on
Fat Tree vs Dragonfly vs HyperX).
"""

from __future__ import annotations

from .base import PortPeer, RouterPort, Topology


class Dragonfly(Topology):
    """Canonical maximum-size Dragonfly."""

    name = "dragonfly"

    def __init__(self, p: int, a: int, h: int):
        if p < 1 or a < 2 or h < 1:
            raise ValueError("need p >= 1, a >= 2, h >= 1")
        self.p, self.a, self.h = p, a, h
        self.g = a * h + 1
        self._radix = (a - 1) + h + p
        self._local_ports = a - 1
        self._global_ports = h

    # ------------------------------------------------------------------

    @property
    def num_groups(self) -> int:
        return self.g

    @property
    def num_routers(self) -> int:
        return self.g * self.a

    @property
    def num_terminals(self) -> int:
        return self.num_routers * self.p

    def radix(self, router: int) -> int:
        return self._radix

    def group_of(self, router: int) -> int:
        return router // self.a

    def local_of(self, router: int) -> int:
        return router % self.a

    def router_id(self, group: int, local: int) -> int:
        if not (0 <= group < self.g and 0 <= local < self.a):
            raise ValueError("group/local out of range")
        return group * self.a + local

    # -- port classification -------------------------------------------

    def is_local_port(self, port: int) -> bool:
        return port < self._local_ports

    def is_global_port(self, port: int) -> bool:
        return self._local_ports <= port < self._local_ports + self._global_ports

    def is_terminal_port(self, port: int) -> bool:
        return port >= self._local_ports + self._global_ports

    def local_port(self, router: int, target_local: int) -> int:
        """Port to reach ``target_local`` within the router's own group."""
        own = self.local_of(router)
        if target_local == own:
            raise ValueError("no self port")
        if not 0 <= target_local < self.a:
            raise ValueError("local index out of range")
        return target_local if target_local < own else target_local - 1

    def global_port(self, router: int, k: int) -> int:
        """The router's k-th global channel port (k in [0, h))."""
        if not 0 <= k < self.h:
            raise ValueError("global channel index out of range")
        return self._local_ports + k

    def terminal_port(self, local_terminal: int) -> int:
        if not 0 <= local_terminal < self.p:
            raise ValueError("local terminal index out of range")
        return self._local_ports + self._global_ports + local_terminal

    # -- global-channel arrangement --------------------------------------

    def global_channel_index(self, router: int, k: int) -> int:
        """Group-wide index j of the router's k-th global channel."""
        return self.local_of(router) * self.h + k

    def global_peer_group(self, group: int, j: int) -> int:
        return (group + j + 1) % self.g

    def global_channel_to_group(self, src_group: int, dst_group: int) -> int:
        """The group-wide global-channel index j reaching ``dst_group``."""
        if src_group == dst_group:
            raise ValueError("groups are not connected to themselves")
        j = (dst_group - src_group - 1) % self.g
        assert 0 <= j < self.a * self.h
        return j

    def gateway_router(self, src_group: int, dst_group: int) -> tuple[int, int]:
        """(router, k) of the global channel from ``src_group`` to ``dst_group``."""
        j = self.global_channel_to_group(src_group, dst_group)
        local, k = divmod(j, self.h)
        return self.router_id(src_group, local), k

    # ------------------------------------------------------------------

    def peer(self, router: int, port: int) -> PortPeer:
        if not 0 <= port < self._radix:
            raise ValueError(f"port {port} out of range")
        if self.is_local_port(port):
            own = self.local_of(router)
            target = port if port < own else port + 1
            nbr = self.router_id(self.group_of(router), target)
            return PortPeer(router_port=RouterPort(nbr, self.local_port(nbr, own)))
        if self.is_global_port(port):
            k = port - self._local_ports
            group = self.group_of(router)
            j = self.global_channel_index(router, k)
            dst_group = self.global_peer_group(group, j)
            j_back = (group - dst_group - 1) % self.g
            local_back, k_back = divmod(j_back, self.h)
            nbr = self.router_id(dst_group, local_back)
            return PortPeer(
                router_port=RouterPort(nbr, self.global_port(nbr, k_back))
            )
        local_t = port - self._local_ports - self._global_ports
        return PortPeer(terminal=router * self.p + local_t)

    def terminal_attachment(self, terminal: int) -> RouterPort:
        if not 0 <= terminal < self.num_terminals:
            raise ValueError("terminal id out of range")
        router, local = divmod(terminal, self.p)
        return RouterPort(router, self.terminal_port(local))

    def min_hops(self, src_router: int, dst_router: int) -> int:
        if src_router == dst_router:
            return 0
        gs, gd = self.group_of(src_router), self.group_of(dst_router)
        if gs == gd:
            return 1  # groups are fully connected
        gw_src, _ = self.gateway_router(gs, gd)
        gw_dst, _ = self.gateway_router(gd, gs)
        hops = 1  # the global hop
        if gw_src != src_router:
            hops += 1
        if gw_dst != dst_router:
            hops += 1
        return hops


def balanced_dragonfly(h: int) -> Dragonfly:
    """Canonical balanced Dragonfly: a = 2h routers/group, p = h terminals."""
    if h < 1:
        raise ValueError("h must be >= 1")
    return Dragonfly(p=h, a=2 * h, h=h)
