"""Torus and mesh topologies (k-ary n-cubes).

Section 2.1 of the paper grounds its deadlock-avoidance taxonomy in these
classic networks: dimension-order routing on a mesh needs only *restricted
routes*; a torus adds structural ring cycles that *dateline resource
classes* break (Dally & Seitz's torus routing chip).  We implement both so
the resource-class machinery the paper builds DimWAR upon can be
demonstrated and tested on the networks it originated from.

Port layout per router: for dimension ``d``, the ``+`` neighbour then the
``-`` neighbour (mesh border routers simply omit the missing ones), then
the terminal ports.  Terminals attach as in HyperX: ``t = router * T +
local``.
"""

from __future__ import annotations

from functools import reduce

from .base import PortPeer, RouterPort, Topology


class Torus(Topology):
    """A k-ary n-cube; ``wrap=False`` degrades it to a mesh."""

    name = "torus"

    def __init__(
        self,
        widths: tuple[int, ...] | list[int],
        terminals_per_router: int,
        wrap: bool = True,
    ):
        widths = tuple(int(w) for w in widths)
        if not widths or any(w < 2 for w in widths):
            raise ValueError("every dimension width must be >= 2")
        if terminals_per_router < 1:
            raise ValueError("terminals_per_router must be >= 1")
        self.widths = widths
        self.terminals_per_router = int(terminals_per_router)
        self.wrap = wrap
        if not wrap:
            self.name = "mesh"
        self.num_dims = len(widths)
        self._num_routers = reduce(lambda a, b: a * b, widths, 1)
        self._strides = []
        s = 1
        for w in widths:
            self._strides.append(s)
            s *= w
        # Per-router port tables: port -> (dim, direction, neighbour router).
        self._ports: list[list[tuple[int, int, int]]] = []
        self._port_index: list[dict[tuple[int, int], int]] = []
        for r in range(self._num_routers):
            plist: list[tuple[int, int, int]] = []
            pidx: dict[tuple[int, int], int] = {}
            c = self.coords(r)
            for d, w in enumerate(widths):
                for direction in (+1, -1):
                    nc = c[d] + direction
                    if wrap:
                        nc %= w
                    elif not 0 <= nc < w:
                        continue  # mesh border
                    if w == 2 and direction == -1 and wrap:
                        continue  # width-2 ring: one physical neighbour
                    nn = list(c)
                    nn[d] = nc
                    pidx[(d, direction)] = len(plist)
                    plist.append((d, direction, self.router_id(nn)))
            self._ports.append(plist)
            self._port_index.append(pidx)

    # ------------------------------------------------------------------

    @property
    def num_routers(self) -> int:
        return self._num_routers

    @property
    def num_terminals(self) -> int:
        return self._num_routers * self.terminals_per_router

    def radix(self, router: int) -> int:
        return len(self._ports[router]) + self.terminals_per_router

    def coords(self, router: int) -> tuple[int, ...]:
        out = []
        for w in self.widths:
            out.append(router % w)
            router //= w
        return tuple(out)

    def router_id(self, coords) -> int:
        rid = 0
        for c, w, s in zip(coords, self.widths, self._strides):
            if not 0 <= c < w:
                raise ValueError(f"coordinate {c} out of range [0,{w})")
            rid += c * s
        return rid

    # -- ports ------------------------------------------------------------

    def num_router_ports(self, router: int) -> int:
        return len(self._ports[router])

    def dir_port(self, router: int, dim: int, direction: int) -> int:
        """Port toward the ``direction`` (+1/-1) neighbour in ``dim``."""
        try:
            return self._port_index[router][(dim, direction)]
        except KeyError:
            raise ValueError(
                f"router {router} has no {direction:+d} neighbour in dim {dim}"
            ) from None

    def port_info(self, router: int, port: int) -> tuple[int, int, int]:
        """(dim, direction, neighbour) of a router-facing port."""
        if not 0 <= port < len(self._ports[router]):
            raise ValueError(f"port {port} is not a router-facing port")
        return self._ports[router][port]

    def terminal_port(self, local_terminal: int) -> int:
        # NOTE: only meaningful per router (meshes have variable radix);
        # callers must add the router's own router-port count.
        raise NotImplementedError("use terminal_port_of(router, local)")

    def terminal_port_of(self, router: int, local_terminal: int) -> int:
        if not 0 <= local_terminal < self.terminals_per_router:
            raise ValueError("local terminal index out of range")
        return len(self._ports[router]) + local_terminal

    def is_terminal_port(self, router: int, port: int) -> bool:
        return port >= len(self._ports[router])

    def peer(self, router: int, port: int) -> PortPeer:
        nports = len(self._ports[router])
        if port < 0 or port >= nports + self.terminals_per_router:
            raise ValueError(f"port {port} out of range")
        if port >= nports:
            local = port - nports
            return PortPeer(
                terminal=router * self.terminals_per_router + local
            )
        dim, direction, nbr = self._ports[router][port]
        # width-2 wrapped rings collapse +1/-1 onto the same neighbour;
        # pair their single ports directly
        if (dim, -direction) in self._port_index[nbr]:
            back = self.dir_port(nbr, dim, -direction)
        else:
            back = self.dir_port(nbr, dim, direction)
        return PortPeer(router_port=RouterPort(nbr, back))

    def terminal_attachment(self, terminal: int) -> RouterPort:
        if not 0 <= terminal < self.num_terminals:
            raise ValueError("terminal id out of range")
        router, local = divmod(terminal, self.terminals_per_router)
        return RouterPort(router, self.terminal_port_of(router, local))

    # -- distances ---------------------------------------------------------

    def dim_distance(self, dim: int, a: int, b: int) -> int:
        """Hops needed in ``dim`` from coordinate ``a`` to ``b``."""
        if a == b:
            return 0
        if not self.wrap:
            return abs(a - b)
        w = self.widths[dim]
        fwd = (b - a) % w
        return min(fwd, w - fwd)

    def dim_direction(self, dim: int, a: int, b: int) -> int:
        """Minimal travel direction (+1/-1) in ``dim``; +1 breaks ties."""
        if a == b:
            raise ValueError("already aligned")
        if not self.wrap:
            return 1 if b > a else -1
        w = self.widths[dim]
        fwd = (b - a) % w
        return 1 if fwd <= w - fwd else -1

    def min_hops(self, src_router: int, dst_router: int) -> int:
        a, b = self.coords(src_router), self.coords(dst_router)
        return sum(self.dim_distance(d, x, y) for d, (x, y) in enumerate(zip(a, b)))

    def __repr__(self) -> str:  # pragma: no cover
        kind = "Torus" if self.wrap else "Mesh"
        return f"{kind}(widths={self.widths}, T={self.terminals_per_router})"


def mesh(widths, terminals_per_router: int) -> Torus:
    """Convenience constructor for a mesh (no wraparound)."""
    return Torus(widths, terminals_per_router, wrap=False)
