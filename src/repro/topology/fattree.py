"""k-ary n-tree fat tree (folded Clos) topology, with optional edge taper.

The classic HPC fat tree: ``n`` switch levels, ``n * k^(n-1)`` switches.
Each switch has ``k`` down-ports and (except the top level) ``k`` up-ports.
Leaf switches host the terminals; with ``leaf_factor = m`` every leaf hosts
``m * k`` terminals over ``k`` up-links — ``m = 1`` is the full-bisection
k-ary n-tree (``k^n`` terminals), ``m = 2`` the common 2:1 edge-
oversubscribed build whose cost (and ~50% bisection) is comparable to the
paper's HyperX and Dragonfly configurations (used by the Figure 4
head-to-head).

Addressing: a switch is ``(level, w)`` with ``w`` an (n-1)-digit base-k
word; switch ``(l, w)`` and ``(l-1, w')`` are connected iff ``w`` and ``w'``
agree in every digit except digit ``l-1``.  Switch ``(l, w)`` reaches
exactly the terminals whose leaf-word digits at positions ``l..n-2`` match
``w`` — the subtree used by up/down routing.

Port layout: down-ports ``[0, D)`` (``D = m*k`` at leaves, ``k`` above),
up-ports ``[D, D+k)``.
"""

from __future__ import annotations

from .base import PortPeer, RouterPort, Topology


class FatTree(Topology):
    """A k-ary n-tree, optionally edge-oversubscribed by ``leaf_factor``."""

    name = "fattree"

    def __init__(self, k: int, n: int, leaf_factor: int = 1):
        if k < 2 or n < 1:
            raise ValueError("need arity k >= 2 and levels n >= 1")
        if leaf_factor < 1:
            raise ValueError("leaf_factor must be >= 1")
        self.k, self.n = k, n
        self.leaf_factor = leaf_factor
        self._switches_per_level = k ** (n - 1)
        self._leaf_down = leaf_factor * k
        self._num_terminals = leaf_factor * k**n

    # ------------------------------------------------------------------

    @property
    def num_routers(self) -> int:
        return self.n * self._switches_per_level

    @property
    def num_terminals(self) -> int:
        return self._num_terminals

    @property
    def levels(self) -> int:
        return self.n

    def down_degree(self, level: int) -> int:
        """Number of down-ports at ``level`` (terminals at the leaves)."""
        return self._leaf_down if level == 0 else self.k

    def radix(self, router: int) -> int:
        level, _ = self.level_word(router)
        down = self.down_degree(level)
        return down if level == self.n - 1 else down + self.k

    # -- switch addressing ----------------------------------------------

    def level_word(self, router: int) -> tuple[int, tuple[int, ...]]:
        level, idx = divmod(router, self._switches_per_level)
        if not 0 <= level < self.n:
            raise ValueError("router id out of range")
        return level, self._digits(idx, self.n - 1)

    def switch_id(self, level: int, word: tuple[int, ...]) -> int:
        if not 0 <= level < self.n or len(word) != self.n - 1:
            raise ValueError("bad switch address")
        return level * self._switches_per_level + self._value(word)

    def _digits(self, value: int, n: int) -> tuple[int, ...]:
        out = []
        for _ in range(n):
            out.append(value % self.k)
            value //= self.k
        return tuple(out)  # digit 0 first

    def _value(self, digits: tuple[int, ...]) -> int:
        v = 0
        for d in reversed(digits):
            v = v * self.k + d
        return v

    # -- ports ------------------------------------------------------------

    def is_up_port(self, router: int, port: int) -> bool:
        level, _ = self.level_word(router)
        return port >= self.down_degree(level)

    def down_port(self, digit: int) -> int:
        if digit < 0:
            raise ValueError("digit out of range")
        return digit

    def up_port(self, router: int, j: int) -> int:
        if not 0 <= j < self.k:
            raise ValueError("up port index out of range")
        level, _ = self.level_word(router)
        return self.down_degree(level) + j

    def peer(self, router: int, port: int) -> PortPeer:
        level, word = self.level_word(router)
        if port < 0 or port >= self.radix(router):
            raise ValueError(f"port {port} out of range")
        down = self.down_degree(level)
        if port < down:  # down
            if level == 0:
                return PortPeer(terminal=self._value(word) * down + port)
            child_word = list(word)
            my_digit = child_word[level - 1]
            child_word[level - 1] = port
            child = self.switch_id(level - 1, tuple(child_word))
            return PortPeer(
                router_port=RouterPort(child, self.up_port(child, my_digit))
            )
        j = port - down  # up
        parent_word = list(word)
        my_digit = parent_word[level]
        parent_word[level] = j
        parent = self.switch_id(level + 1, tuple(parent_word))
        return PortPeer(router_port=RouterPort(parent, self.down_port(my_digit)))

    def terminal_attachment(self, terminal: int) -> RouterPort:
        if not 0 <= terminal < self._num_terminals:
            raise ValueError("terminal id out of range")
        leaf, port = divmod(terminal, self._leaf_down)
        return RouterPort(self.switch_id(0, self._digits(leaf, self.n - 1)), port)

    # -- routing geometry -------------------------------------------------

    def covers(self, router: int, terminal: int) -> bool:
        """True when ``terminal`` is in the switch's down subtree."""
        level, word = self.level_word(router)
        leaf_word = self._digits(terminal // self._leaf_down, self.n - 1)
        return all(word[i] == leaf_word[i] for i in range(level, self.n - 1))

    def down_digit(self, router: int, terminal: int) -> int:
        """Down-port toward ``terminal`` (must be covered)."""
        level, _ = self.level_word(router)
        if level == 0:
            return terminal % self._leaf_down
        return self._digits(terminal // self._leaf_down, self.n - 1)[level - 1]

    def nca_level(self, t1: int, t2: int) -> int:
        """Level of the nearest common ancestor switches of two terminals."""
        if t1 // self._leaf_down == t2 // self._leaf_down:
            return 0
        w1 = self._digits(t1 // self._leaf_down, self.n - 1)
        w2 = self._digits(t2 // self._leaf_down, self.n - 1)
        for level in range(1, self.n):
            if all(w1[i] == w2[i] for i in range(level, self.n - 1)):
                return level
        return self.n - 1

    def min_hops(self, src_router: int, dst_router: int) -> int:
        if src_router == dst_router:
            return 0
        l1, w1 = self.level_word(src_router)
        l2, w2 = self.level_word(dst_router)
        # Meeting level L: going up frees digits below L, so the switches can
        # meet at L iff their words agree on every digit >= L.
        for level in range(max(l1, l2), self.n):
            if all(w1[i] == w2[i] for i in range(level, self.n - 1)):
                return (level - l1) + (level - l2)
        return (self.n - 1 - l1) + (self.n - 1 - l2)
