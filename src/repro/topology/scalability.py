"""Topology scalability models (the paper's Figure 2).

For a given router radix, compute the maximum number of network endpoints
each topology family can reach:

* **HyperX (L dims)** — maximize ``prod(w_i) * T`` subject to
  ``sum(w_i - 1) + T <= radix`` over integer widths (possibly mixed) and
  terminal count.  Reproduces the paper's quoted 64-port figures: 10,648
  nodes in 2D, 78,608 in 3D, and 463,736 in 4D (the 4D optimum uses mixed
  widths 14,14,13,13 with 14 terminals).
* **Dragonfly (diameter 3)** — balanced ``a = 2p = 2h`` maximum-size build:
  ``N = a * p * g`` with ``g = a*h + 1``.
* **Fat tree (3 levels)** — folded Clos: ``N = 2 * (k/2)^2 * k = k^3 / 4``.
* **SlimFly (diameter 2)** — MMS-graph based: ``2 q^2`` routers of network
  radix ``(3q - delta) / 2`` for a prime power ``q = (2/3)(2w + delta)``,
  with the standard ``p = ceil(k'/2)`` endpoints per router.
* **HyperCube** — the HyperX special case with all widths 2.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass


@dataclass(frozen=True)
class ScalePoint:
    topology: str
    diameter: int
    radix: int
    nodes: int
    detail: str = ""


# ---------------------------------------------------------------------------
# HyperX
# ---------------------------------------------------------------------------


def hyperx_max_nodes(radix: int, dims: int) -> tuple[int, tuple[int, ...], int]:
    """(nodes, widths, terminals) of the best HyperX of ``dims`` dimensions.

    Searches integer width vectors (non-increasing, mixed widths allowed)
    around the continuous optimum ``w* ~ (radix + dims) * L / (L+1) / L``.
    """
    if radix < dims + 1:
        return (0, (), 0)
    # continuous optimum of w^L * (radix - L(w-1)) in w
    w_star = (radix + dims) / (dims + 1)
    lo = max(2, int(w_star) - 3)
    hi = int(w_star) + 3
    best = (0, (), 0)
    for widths in itertools.combinations_with_replacement(
        range(hi, lo - 1, -1), dims
    ):
        ports = sum(w - 1 for w in widths)
        terminals = radix - ports
        if terminals < 1:
            continue
        nodes = math.prod(widths) * terminals
        if nodes > best[0]:
            best = (nodes, widths, terminals)
    return best


def hypercube_max_nodes(radix: int) -> tuple[int, int, int]:
    """(nodes, dims, terminals) for the best HyperCube (all widths 2)."""
    best = (0, 0, 0)
    for dims in range(1, radix):
        terminals = radix - dims
        if terminals < 1:
            break
        nodes = (1 << dims) * terminals
        if nodes > best[0]:
            best = (nodes, dims, terminals)
    return best


# ---------------------------------------------------------------------------
# Dragonfly
# ---------------------------------------------------------------------------


def dragonfly_max_nodes(radix: int) -> tuple[int, int]:
    """(nodes, h) for the balanced maximum-size Dragonfly: radix = 4h - 1."""
    h = (radix + 1) // 4
    if h < 1:
        return (0, 0)
    a, p = 2 * h, h
    g = a * h + 1
    return (a * p * g, h)


# ---------------------------------------------------------------------------
# Fat tree
# ---------------------------------------------------------------------------


def fattree_max_nodes(radix: int, levels: int = 3) -> int:
    """Folded-Clos fat tree with ``levels`` switch tiers: N = 2 (k/2)^levels."""
    half = radix // 2
    if half < 1:
        return 0
    return 2 * half**levels


# ---------------------------------------------------------------------------
# SlimFly
# ---------------------------------------------------------------------------


def _is_prime_power(q: int) -> bool:
    if q < 2:
        return False
    for p in range(2, int(math.isqrt(q)) + 1):
        if q % p == 0:
            while q % p == 0:
                q //= p
            return q == 1
    return True  # q itself is prime


def slimfly_max_nodes(radix: int) -> tuple[int, int]:
    """(nodes, q) for the largest MMS SlimFly fitting in ``radix`` ports.

    Network radix ``k' = (3q - delta)/2`` with ``q = 4w + delta`` a prime
    power (delta in {-1, 0, 1}); concentration ``p = ceil(k'/2)`` as in the
    Besta & Hoefler construction.  Requires ``k' + p <= radix``.
    """
    best = (0, 0)
    for q in range(2, 2 * radix):
        if not _is_prime_power(q):
            continue
        if (q - 1) % 4 == 0:
            delta = 1
        elif (q + 1) % 4 == 0:
            delta = -1
        elif q % 4 == 0:
            delta = 0
        else:
            continue
        k_net = (3 * q - delta) // 2
        p = math.ceil(k_net / 2)
        if k_net + p > radix:
            continue
        nodes = 2 * q * q * p
        if nodes > best[0]:
            best = (nodes, q)
    return best


# ---------------------------------------------------------------------------
# Figure 2
# ---------------------------------------------------------------------------


def figure2_points(radix: int) -> list[ScalePoint]:
    """All Figure 2 series at one router radix."""
    out = []
    for dims in (2, 3, 4):
        nodes, widths, t = hyperx_max_nodes(radix, dims)
        out.append(
            ScalePoint(
                f"HyperX-{dims}", dims, radix, nodes, f"widths={widths} T={t}"
            )
        )
    n, h = dragonfly_max_nodes(radix)
    out.append(ScalePoint("Dragonfly-3", 3, radix, n, f"h={h}"))
    out.append(
        ScalePoint("FatTree-3", 4, radix, fattree_max_nodes(radix, 3), "folded Clos")
    )
    n, q = slimfly_max_nodes(radix)
    out.append(ScalePoint("SlimFly-2", 2, radix, n, f"q={q}"))
    # HyperCube (HyperX with all widths 2) is omitted from the figure: its
    # node count is unbounded only because its diameter grows without limit,
    # which is outside the low-diameter regime Figure 2 compares.
    return out


def figure2_table(radices: list[int] | None = None) -> list[ScalePoint]:
    """The full Figure 2 sweep (radix 16..128 by default)."""
    radices = radices or [16, 24, 32, 48, 64, 96, 128]
    points = []
    for r in radices:
        points.extend(figure2_points(r))
    return points
