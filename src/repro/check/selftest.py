"""Mutation self-test: prove every checker fires on its seeded bug.

A sanitizer that silently passes everything is worse than none — it buys
false confidence.  This module therefore tests the checkers themselves, in
three stages (this is what ``python -m repro check`` runs):

1. **negative controls** — sanitized reference runs (4x4 HyperX under DOR,
   DimWAR, OmniWAR, FTHX, and VCFree, plus fault transients) must pass
   cleanly;
2. **differential oracles** — every replay comparison of
   :mod:`repro.check.oracle` must report byte-identical results, and the
   comparator itself must flag a deliberately tampered result;
3. **mutation canaries** — one deliberately seeded bug per checker, each of
   which must raise :class:`~repro.check.sanitizer.SanitizerError` from the
   *right* checker:

   * a credit silently consumed mid-run        -> ``credits``
   * a flit deleted from an input buffer       -> ``conservation``
   * a hand-built cyclic wait between routers  -> ``deadlock`` (wait-for graph)
   * every data channel throttled to a crawl   -> ``deadlock`` (stall horizon)
   * a distance-class algorithm forced to keep
     VC class 0 past the first hop             -> ``vc_legality``
   * FTHX forced to keep class 0 past the
     first hop (adaptive-layer distance rule)  -> ``vc_legality``
   * VCFree forced to take an up hop after a
     down hop (the up*/down* order's one rule) -> ``vc_legality``

:func:`run_selftest` prints one verdict line per stage entry and returns
True only when everything passed.
"""

from __future__ import annotations

import copy

from ..analysis.sweep import measure_point, sweep_load
from ..config import default_config
from ..core.base import RouteCandidate
from ..core.registry import make_algorithm
from ..experiments.faults import run_fault_transient
from ..network.buffers import VcRoute
from ..network.network import Network
from ..network.simulator import Simulator
from ..network.types import Flit, Packet
from ..topology.hyperx import HyperX
from ..traffic.injection import SyntheticTraffic
from ..traffic.patterns import UniformRandom
from .oracle import compare_sweeps, run_all_oracles
from .sanitizer import Sanitizer, SanitizerError


def _build_sim(algorithm: str, widths=(2, 2), tpr: int = 1, rate: float = 0.3,
               seed: int = 3):
    topo = HyperX(widths, tpr)
    algo = make_algorithm(algorithm, topo)
    net = Network(topo, algo, default_config())
    sim = Simulator(net)
    traffic = SyntheticTraffic(
        net, UniformRandom(topo.num_terminals), rate, seed=seed
    )
    sim.processes.append(traffic)
    return sim, net, algo


def _expect_error(checker: str, run) -> tuple[bool, str]:
    """Run ``run()`` and demand a SanitizerError from ``checker``."""
    try:
        run()
    except SanitizerError as e:
        if e.checker == checker:
            return True, f"caught by {checker!r}"
        return False, f"wrong checker: expected {checker!r}, got {e.checker!r}"
    except Exception as e:  # noqa: BLE001 - verdict, not control flow
        return False, f"wrong error type: {type(e).__name__}: {e}"
    return False, "seeded bug was NOT detected"


# ----------------------------------------------------------------------
# Mutation canaries (one per checker)
# ----------------------------------------------------------------------

def canary_credit_leak() -> tuple[bool, str]:
    """Silently consume one downstream credit; the reconciliation must see
    a slot 'occupied' that no flit accounts for."""
    sim, net, _ = _build_sim("DimWAR")
    Sanitizer(sim, window=16).attach()
    sim.run(200)  # clean warm-up: audits pass

    def seed_and_run():
        rec = next(r for r in net.links if r.kind == "rr")
        vc = next(
            v for v in range(net.cfg.router.num_vcs)
            if rec.tracker.credits[v] > 0
        )
        rec.tracker.consume(vc)  # the "leak": no flit moved
        sim.run(64)

    return _expect_error("credits", seed_and_run)


def canary_flit_drop() -> tuple[bool, str]:
    """Delete a buffered flit outright; injected != ejected + in-flight.

    Near saturation with multi-flit packets some input FIFO always holds a
    wormhole body; dropping its tail-most flit cannot trip the VC-protocol
    checks before the conservation audit (16 cycles away at most) fires.
    """
    from ..traffic.sizes import UniformSize

    topo = HyperX((2, 2), 1)
    algo = make_algorithm("DimWAR", topo)
    net = Network(topo, algo, default_config())
    sim = Simulator(net)
    sim.processes.append(SyntheticTraffic(
        net, UniformRandom(4), 0.9, UniformSize(4, 16), seed=3
    ))
    Sanitizer(sim, window=16).attach()

    def seed_and_run():
        for _ in range(100):  # run until some input FIFO holds a victim
            sim.run(16)
            for router in net.routers:
                for unit in router.inputs:
                    for state in unit.vcs:
                        if len(state.fifo) > 1:
                            state.fifo.pop()  # drop the tail-most flit
                            sim.run(32)
                            return
        raise RuntimeError("no buffered flit found to drop")

    return _expect_error("conservation", seed_and_run)


def canary_wait_cycle() -> tuple[bool, str]:
    """Hand-build a two-router cyclic wait; the wait-for graph must find it.

    Commits route A at router r0's link input pointing back out the same
    link (toward r1) and route B at r1 pointing back toward r0, each
    targeting the other's input VC — the minimal wormhole credit cycle.
    """
    sim, net, _ = _build_sim("DimWAR", rate=0.0)
    san = Sanitizer(sim, window=16, stall_horizon=64,
                    conservation=False, credits=False).attach()
    rec = next(r for r in net.links if r.kind == "rr")
    (r0, p0), (r1, p1) = rec.src, rec.dst
    pkt = Packet(src_terminal=0, dst_terminal=1, size=4, create_cycle=0)
    net.routers[r0].inputs[p0].vcs[0].fifo.append(Flit(pkt, 1))
    net.routers[r0].inputs[p0].vcs[0].route = VcRoute(p0, 1, pkt.pid)
    net.routers[r1].inputs[p1].vcs[1].route = VcRoute(p1, 0, pkt.pid)
    if san.find_wait_cycle() is None:
        return False, "wait-for graph missed the hand-built cycle"

    def run():
        sim.run(200)  # stall horizon (64) elapses with zero progress

    return _expect_error("deadlock", run)


def canary_stall() -> tuple[bool, str]:
    """Throttle every router-to-router channel to one flit per 10^9 cycles;
    traffic wedges solid and the stall horizon must fire end to end."""
    sim, net, _ = _build_sim("DimWAR", rate=0.5)

    def seed_and_run():
        sim.run(100)
        for ch in net.channels:
            if ch.limit_rate:
                ch.min_gap = 10 ** 9
        Sanitizer(sim, window=32, stall_horizon=256).attach()
        sim.run(3000)

    return _expect_error("deadlock", seed_and_run)


def canary_illegal_vc() -> tuple[bool, str]:
    """Force OmniWAR to stay on VC class 0 after the first hop; the
    distance-class rule (VC_out = VC_in + 1) must be enforced."""
    sim, _, algo = _build_sim("OmniWAR", rate=0.4)
    Sanitizer(sim, window=16).attach()

    orig_candidates = algo.candidates
    algo.cache_key = lambda ctx, dest_router: None  # defeat memoisation

    def pinned(ctx):
        return [
            RouteCandidate(c.out_port, 0, c.hops, c.deroute)
            for c in orig_candidates(ctx)
        ]

    algo.candidates = pinned
    return _expect_error("vc_legality", lambda: sim.run(400))


def canary_fthx_escape_leak() -> tuple[bool, str]:
    """Force FTHX to stay on VC class 0 after the first hop; its combined
    discipline (advance the adaptive class, or drop one-way into the escape
    subnetwork) must be enforced through route_discipline_error."""
    sim, _, algo = _build_sim("FTHX", rate=0.4)
    Sanitizer(sim, window=16).attach()

    orig_candidates = algo.candidates
    algo.cache_key = lambda ctx, dest_router: None  # defeat memoisation

    def pinned(ctx):
        return [
            RouteCandidate(c.out_port, 0, c.hops, c.deroute)
            for c in orig_candidates(ctx)
        ]

    algo.candidates = pinned
    return _expect_error("vc_legality", lambda: sim.run(400))


def canary_vcfree_up_after_down() -> tuple[bool, str]:
    """Steer a VCFree packet down one coordinate and then back up; the
    up*/down* order admits no second rise and the sanitizer must say so."""
    from ..core.vcfree import _DOWN, _FRESH

    sim, _, algo = _build_sim("VCFree", widths=(3, 3), rate=0.4)
    Sanitizer(sim, window=16).attach()
    hx = algo.hx

    orig_candidates = algo.candidates
    algo.cache_key = lambda ctx, dest_router: None  # defeat memoisation

    def sabotaged(ctx):
        rid = ctx.router.router_id
        here = hx.coords(rid)
        dest = algo.dest_coords(ctx.packet)
        d = algo.first_unaligned_dim(here, dest)
        h, t = here[d], dest[d]
        ph = algo.phase(ctx, d, h)
        if ph == _FRESH and h - t >= 2:
            # force a (legal) down deroute to set up the violation
            return [RouteCandidate(hx.dim_port(rid, d, h - 1), 0, 3, True)]
        if ph == _DOWN and h + 1 < hx.widths[d]:
            # the seeded bug: an up hop after the down hop
            return [RouteCandidate(hx.dim_port(rid, d, h + 1), 0, 3, True)]
        return orig_candidates(ctx)

    algo.candidates = sabotaged
    return _expect_error("vc_legality", lambda: sim.run(400))


def canary_divergence() -> tuple[bool, str]:
    """Tamper one field of a replayed result; the byte comparator must not
    report the pair identical (proxy for any real execution divergence)."""
    topo = HyperX((2, 2), 1)
    algo = make_algorithm("DimWAR", topo)
    sweep = sweep_load(
        topo, algo, UniformRandom(4), [0.1], total_cycles=300, seed=1
    )
    tampered = copy.deepcopy(sweep)
    tampered.points[0].packets_delivered += 1
    report = compare_sweeps("tamper-probe", sweep, tampered)
    if report.ok:
        return False, "comparator reported a tampered result identical"
    return True, f"divergence pinpointed: {report.detail}"


CANARIES = [
    ("credit leak", canary_credit_leak),
    ("flit drop", canary_flit_drop),
    ("cyclic wait", canary_wait_cycle),
    ("throttled stall", canary_stall),
    ("illegal VC class", canary_illegal_vc),
    ("FTHX escape leak", canary_fthx_escape_leak),
    ("VCFree up-after-down", canary_vcfree_up_after_down),
    ("tampered replay", canary_divergence),
]


# ----------------------------------------------------------------------
# Negative controls
# ----------------------------------------------------------------------

def _clean_runs() -> list[tuple[str, bool, str]]:
    """Sanitized reference runs that must pass with zero findings."""
    results = []
    for name in ("DOR", "DimWAR", "OmniWAR", "FTHX", "VCFree"):
        topo = HyperX((4, 4), 1)
        algo = make_algorithm(name, topo)
        try:
            measure_point(
                topo, algo, UniformRandom(topo.num_terminals), 0.2,
                total_cycles=800, seed=2, check=True,
            )
            results.append((f"sanitized 4x4 {name}", True, "no findings"))
        except SanitizerError as e:
            results.append((f"sanitized 4x4 {name}", False, str(e)))
    for name in ("DimWAR", "FTHX"):
        try:
            res = run_fault_transient(
                name, rate=0.2, window=100, pre_windows=2, post_windows=4,
                fail_links=2, check=True,
            )
            ok = res.drained and res.routing_error is None
            results.append((
                f"sanitized fault transient {name}",
                ok,
                "no findings" if ok else f"run incomplete: {res.routing_error}",
            ))
        except SanitizerError as e:
            results.append((f"sanitized fault transient {name}", False, str(e)))
    return results


# ----------------------------------------------------------------------

def run_selftest(verbose: bool = True, oracles: bool = True) -> bool:
    """Run the whole self-test; prints a verdict table, returns pass/fail."""
    rows: list[tuple[str, bool, str]] = []
    rows.extend(_clean_runs())
    if oracles:
        for report in run_all_oracles():
            rows.append((f"oracle {report.name}", report.ok, report.detail))
    for name, canary in CANARIES:
        ok, detail = canary()
        rows.append((f"canary {name}", ok, detail))

    all_ok = all(ok for _, ok, _ in rows)
    if verbose:
        width = max(len(name) for name, _, _ in rows)
        for name, ok, detail in rows:
            print(f"{'PASS' if ok else 'FAIL'}  {name:<{width}}  {detail}")
        print(f"\nrepro.check self-test: "
              f"{'all checks passed' if all_ok else 'FAILURES ABOVE'} "
              f"({len(rows)} checks)")
    return all_ok
