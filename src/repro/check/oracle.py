"""Differential oracles: one spec, several execution paths, identical bytes.

The simulator has independently-optimised execution paths that must not be
able to change results: the parallel sweep engine (worker processes rebuild
every object from a picklable spec), the per-router route cache (memoised
candidate lists for stateless algorithms), the router's scoring kernel (the
batched fast weight pass vs the reference scoring loop), the sharded
multi-process engine (:mod:`repro.network.shard` — router slices in forked
workers, exchanged boundary flits/credits), and the fault
layer's :class:`~repro.faults.degraded.DegradedTopology` wrapper (which,
with an *empty* fault set, must be a pure pass-through).  The HTTP
experiment service layers more machinery on top — request canonicalisation,
the job state machine and its JSONL journal, the shared memo cache — and
must still serve the exact bytes a direct call returns.  Each oracle here
replays
an identical measurement through two such paths and compares the serialized
results **byte for byte** — any divergence, however small, is a bug in one
of the paths.

The oracles return :class:`OracleReport` rather than raising, so the
self-test can tabulate all of them; ``report.ok`` is the verdict and
``report.detail`` pinpoints the first difference.

Example::

    >>> from repro.check.oracle import diff_cache_on_off
    >>> diff_cache_on_off(widths=(2, 2), rates=(0.1,), total_cycles=300).ok
    True
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..analysis.sweep import SweepResult, sweep_load
from ..config import RouterConfig, SimConfig, default_config
from ..core.registry import make_algorithm
from ..faults.degraded import DegradedTopology
from ..faults.model import FaultSet
from ..topology.hyperx import HyperX
from ..traffic.patterns import pattern_by_name


@dataclass
class OracleReport:
    """Outcome of one differential comparison."""

    name: str
    ok: bool
    detail: str

    def __str__(self) -> str:
        return f"{self.name}: {'OK' if self.ok else 'DIVERGED — ' + self.detail}"


def _first_difference(a: str, b: str) -> str:
    """Human-readable locator of the first divergence between two JSON blobs."""
    if a == b:
        return "identical"
    da, db = json.loads(a), json.loads(b)
    pa, pb = da.get("points", []), db.get("points", [])
    if len(pa) != len(pb):
        return f"point counts differ: {len(pa)} vs {len(pb)}"
    for i, (x, y) in enumerate(zip(pa, pb)):
        for key in x:
            if x.get(key) != y.get(key):
                return (
                    f"point {i} field {key!r}: {x.get(key)!r} vs {y.get(key)!r}"
                )
    return "blobs differ outside the point data"


def compare_sweeps(name: str, a: SweepResult, b: SweepResult) -> OracleReport:
    """Byte-compare two sweep results (wall-clock excluded by ``to_json``)."""
    ja, jb = a.to_json(), b.to_json()
    return OracleReport(name, ja == jb, _first_difference(ja, jb))


def _fresh(widths, terminals_per_router, algorithm, pattern, faults=None):
    """Build a fresh topology/algorithm/pattern triple for one run.

    Every oracle run gets its own objects: live algorithm/pattern state
    (rngs, caches) must never be shared between the two paths under
    comparison, or the comparison itself would perturb them.
    """
    topo = HyperX(tuple(widths), terminals_per_router)
    if faults is not None:
        topo = DegradedTopology(topo, faults)
    algo = make_algorithm(algorithm, topo)
    patt = pattern_by_name(pattern, topo)
    return topo, algo, patt


def diff_serial_parallel(
    widths=(4, 4),
    terminals_per_router: int = 1,
    algorithm: str = "DimWAR",
    pattern: str = "UR",
    rates=(0.1, 0.3),
    total_cycles: int = 1000,
    seed: int = 1,
    workers: int = 2,
    faults: FaultSet | None = None,
) -> OracleReport:
    """Serial in-process sweep vs the worker-pool spec path, byte-identical.

    ``faults`` (a declarative :class:`~repro.faults.model.FaultSet`) runs the
    comparison on a degraded topology — the workers must reconstruct the
    same surviving graph from the pickled fault tuple.
    """
    t1, a1, p1 = _fresh(widths, terminals_per_router, algorithm, pattern, faults)
    serial = sweep_load(
        t1, a1, p1, list(rates), total_cycles=total_cycles, seed=seed
    )
    t2, a2, p2 = _fresh(widths, terminals_per_router, algorithm, pattern, faults)
    parallel = sweep_load(
        t2, a2, p2, list(rates), total_cycles=total_cycles, seed=seed,
        workers=workers,
    )
    suffix = " (faulted)" if faults is not None else ""
    return compare_sweeps(f"serial-vs-parallel{suffix}", serial, parallel)


def diff_cache_on_off(
    widths=(4, 4),
    terminals_per_router: int = 1,
    algorithm: str = "DOR",
    pattern: str = "UR",
    rates=(0.1, 0.3),
    total_cycles: int = 1000,
    seed: int = 1,
) -> OracleReport:
    """Route cache enabled vs disabled, byte-identical.

    The memoised candidate lists (``RouterConfig.route_cache``) are a pure
    optimisation; this oracle is the proof.  Uses a cacheable algorithm —
    one whose ``cache_key`` is non-None — or the comparison is vacuous.
    """
    cfg_on = default_config()
    cfg_off = SimConfig(router=RouterConfig(route_cache=False)).validated()
    t1, a1, p1 = _fresh(widths, terminals_per_router, algorithm, pattern)
    on = sweep_load(
        t1, a1, p1, list(rates), total_cycles=total_cycles, seed=seed, cfg=cfg_on
    )
    t2, a2, p2 = _fresh(widths, terminals_per_router, algorithm, pattern)
    off = sweep_load(
        t2, a2, p2, list(rates), total_cycles=total_cycles, seed=seed, cfg=cfg_off
    )
    return compare_sweeps("cache-on-vs-off", on, off)


def diff_kernel_on_off(
    widths=(4, 4),
    terminals_per_router: int = 1,
    algorithm: str = "OmniWAR",
    pattern: str = "UR",
    rates=(0.1, 0.3),
    total_cycles: int = 1000,
    seed: int = 1,
) -> OracleReport:
    """Scoring kernel enabled vs the reference scoring loop, byte-identical.

    The router's fast scoring path (``RouterConfig.scoring_kernel``) batches
    per-candidate congestion reads over the cached candidate skeleton; the
    reference path is the straightforward ``_allocate_vc`` /
    ``port_congestion`` / ``route_weight`` call chain.  They must agree on
    every routing decision — same VC allocation, bit-identical float
    weights (the kernel keeps the reference's integer denominator and
    operation order), same tie-break jitter consumption — or downstream
    event order diverges and this comparison catches it.  Uses an adaptive
    multi-candidate algorithm so the weight comparison actually
    discriminates (DOR's single candidate would make it near-vacuous).
    """
    cfg_on = default_config()
    cfg_off = SimConfig(router=RouterConfig(scoring_kernel=False)).validated()
    t1, a1, p1 = _fresh(widths, terminals_per_router, algorithm, pattern)
    on = sweep_load(
        t1, a1, p1, list(rates), total_cycles=total_cycles, seed=seed, cfg=cfg_on
    )
    t2, a2, p2 = _fresh(widths, terminals_per_router, algorithm, pattern)
    off = sweep_load(
        t2, a2, p2, list(rates), total_cycles=total_cycles, seed=seed, cfg=cfg_off
    )
    return compare_sweeps("kernel-on-vs-off", on, off)


def diff_soa_on_off(
    widths=(4, 4),
    terminals_per_router: int = 1,
    algorithm: str = "OmniWAR",
    pattern: str = "UR",
    rates=(0.1, 0.3),
    total_cycles: int = 1000,
    seed: int = 1,
) -> OracleReport:
    """SoA datapath enabled vs the object reference engine, byte-identical.

    The struct-of-arrays core (``RouterConfig.soa_core``,
    :mod:`repro.network.soa`) replaces the per-component ``step()``
    dispatch with fused per-stage kernels over the same shared state; the
    object path is the reference implementation it is transliterated from.
    Every ordering the kernels inherit — active-set insertion order,
    jitter-stream consumption, route-cache eviction clocks, credit wakeups
    — must match cycle-exactly, or downstream event order diverges and
    this comparison catches it.  Uses an adaptive multi-candidate
    algorithm so the congestion-state reads (credits, staged occupancy)
    feed back into routing and any drift compounds instead of washing out.
    """
    cfg_on = default_config()
    cfg_off = SimConfig(router=RouterConfig(soa_core=False)).validated()
    t1, a1, p1 = _fresh(widths, terminals_per_router, algorithm, pattern)
    on = sweep_load(
        t1, a1, p1, list(rates), total_cycles=total_cycles, seed=seed, cfg=cfg_on
    )
    t2, a2, p2 = _fresh(widths, terminals_per_router, algorithm, pattern)
    off = sweep_load(
        t2, a2, p2, list(rates), total_cycles=total_cycles, seed=seed, cfg=cfg_off
    )
    return compare_sweeps("soa-on-vs-off", on, off)


def diff_skip_on_off(
    widths=(4, 4),
    terminals_per_router: int = 1,
    algorithm: str = "OmniWAR",
    pattern: str = "UR",
    rates=(0.1, 0.3),
    total_cycles: int = 1000,
    seed: int = 1,
) -> OracleReport:
    """Cycle skip-ahead enabled vs per-cycle stepping, byte-identical.

    The event-compressing engine (``RouterConfig.cycle_skip``,
    :mod:`repro.network.skip`) advances the clock past provably inert
    cycles instead of executing them, and the traffic processes scan their
    Bernoulli streams ahead to bound their next injection.  Nothing about
    the measured sweep may move: the scan must consume the RNG in exact
    per-cycle order, every fault event and sampler window boundary must
    land on its scheduled cycle, and every skipped cycle must truly have
    been inert — any violation shifts injections or deliveries and this
    comparison catches it.  The low rate point matters most here: sparser
    traffic means longer inert gaps, so the compressed path does real
    jumping while the loaded point exercises the veto rules.
    """
    cfg_on = default_config()
    cfg_off = SimConfig(router=RouterConfig(cycle_skip=False)).validated()
    t1, a1, p1 = _fresh(widths, terminals_per_router, algorithm, pattern)
    on = sweep_load(
        t1, a1, p1, list(rates), total_cycles=total_cycles, seed=seed, cfg=cfg_on
    )
    t2, a2, p2 = _fresh(widths, terminals_per_router, algorithm, pattern)
    off = sweep_load(
        t2, a2, p2, list(rates), total_cycles=total_cycles, seed=seed, cfg=cfg_off
    )
    return compare_sweeps("skip-on-vs-off", on, off)


def diff_shard_on_off(
    widths=(4, 4),
    terminals_per_router: int = 1,
    algorithm: str = "OmniWAR",
    pattern: str = "UR",
    rates=(0.1, 0.3),
    total_cycles: int = 1000,
    seed: int = 1,
    shard_counts=(1, 2, 4),
    faults: FaultSet | None = None,
) -> OracleReport:
    """Sharded multi-process engine vs single-process, byte-identical.

    The sharded engine (:mod:`repro.network.shard`) partitions the routers
    across forked worker processes and exchanges boundary flits/credits at
    chunk boundaries; everything about that — partial network builds, the
    chunk lookahead, packet-replica reconstruction, pid-stream alignment of
    unowned sources, per-shard statistics merging — must be invisible in
    the measured curve.  Each configured shard count (including the
    degenerate one-worker case, which still runs the full chunk protocol)
    is compared against the same single-process sweep; ``faults`` repeats
    the comparison on a degraded topology, where boundary ports can be
    statically missing and mid-chunk revocations span shards.
    """
    suffix = " (faulted)" if faults is not None else ""
    t1, a1, p1 = _fresh(widths, terminals_per_router, algorithm, pattern, faults)
    base = sweep_load(
        t1, a1, p1, list(rates), total_cycles=total_cycles, seed=seed
    )
    for shards in shard_counts:
        t2, a2, p2 = _fresh(
            widths, terminals_per_router, algorithm, pattern, faults
        )
        sharded = sweep_load(
            t2, a2, p2, list(rates), total_cycles=total_cycles, seed=seed,
            shards=shards,
        )
        report = compare_sweeps(
            f"shard-on-vs-off[{shards}]{suffix}", base, sharded
        )
        if not report.ok:
            return report
    counts = ",".join(str(s) for s in shard_counts)
    return OracleReport(
        f"shard-on-vs-off{suffix}", True,
        f"identical for shard counts {{{counts}}}",
    )


def diff_service_direct(
    widths=(4, 4),
    terminals_per_router: int = 1,
    algorithm: str = "DimWAR",
    pattern: str = "UR",
    rates=(0.1, 0.3),
    total_cycles: int = 1000,
    seed: int = 1,
    workers: int = 2,
    faults: FaultSet | None = None,
    timeout_s: float = 120.0,
) -> OracleReport:
    """Curve fetched through the HTTP experiment service vs a direct
    in-process ``sweep_load``, byte-identical.

    Spins up a real :class:`~repro.service.server.ExperimentService` on an
    ephemeral port with a throwaway memo root and job log, submits the
    sweep over HTTP, polls it to completion, and fetches the result bytes.
    The service path layers *everything* on top of the simulation — request
    canonicalisation, the job state machine, the JSONL journal, the
    ProcessPool fan-out, and the content-addressed memo cache — and none
    of it may touch a single byte of the curve.  ``faults`` runs the
    comparison on a degraded topology, proving the declarative fault list
    round-trips through the JSON request schema too.
    """
    import json as _json
    import tempfile
    import time
    import urllib.request

    from ..service.server import ExperimentService

    t1, a1, p1 = _fresh(widths, terminals_per_router, algorithm, pattern, faults)
    direct = sweep_load(
        t1, a1, p1, list(rates), total_cycles=total_cycles, seed=seed
    )
    request = {
        "widths": list(widths),
        "terminals_per_router": terminals_per_router,
        "algorithm": algorithm,
        "pattern": pattern,
        "rates": list(rates),
        "total_cycles": total_cycles,
        "seed": seed,
        "faults": [
            [type(f).__name__, _fault_asdict(f)] for f in (faults or ())
        ],
    }
    suffix = " (faulted)" if faults is not None else ""
    name = f"service-vs-direct{suffix}"
    with tempfile.TemporaryDirectory() as td:
        service = ExperimentService(
            port=0, workers=workers, memo_root=f"{td}/memo",
            job_log=f"{td}/jobs.jsonl", rate_limit=0,
        ).start()
        try:
            body = _json.dumps(request).encode("utf-8")
            with urllib.request.urlopen(urllib.request.Request(
                f"{service.url}/jobs", data=body, method="POST"
            )) as resp:
                job_id = _json.load(resp)["job_id"]
            deadline = time.monotonic() + timeout_s
            state = "queued"
            while time.monotonic() < deadline:
                with urllib.request.urlopen(
                    f"{service.url}/jobs/{job_id}"
                ) as resp:
                    state = _json.load(resp)["state"]
                if state in ("done", "failed", "cancelled"):
                    break
                time.sleep(0.05)
            if state != "done":
                return OracleReport(
                    name, False, f"service job ended {state!r}, not 'done'"
                )
            with urllib.request.urlopen(
                f"{service.url}/jobs/{job_id}/result"
            ) as resp:
                served = resp.read().decode("utf-8")
        finally:
            service.shutdown()
    ja = direct.to_json()
    return OracleReport(name, ja == served, _first_difference(ja, served))


def _fault_asdict(fault) -> dict:
    from dataclasses import asdict

    return asdict(fault)


def diff_pristine_empty_faultset(
    widths=(4, 4),
    terminals_per_router: int = 1,
    algorithm: str = "DimWAR",
    pattern: str = "UR",
    rates=(0.1, 0.3),
    total_cycles: int = 1000,
    seed: int = 1,
) -> OracleReport:
    """Pristine topology vs a DegradedTopology with an *empty* FaultSet.

    The fault layer must be a pure pass-through when nothing is broken.
    Uses DimWAR/OmniWAR-style algorithms whose VC-class count does not
    change under a degraded wrapper — DOR grows a second (escape) class
    when fault-aware, which legitimately changes the VC partitioning, so it
    is the one algorithm this oracle must *not* use.
    """
    if algorithm == "DOR":
        raise ValueError(
            "DOR changes its VC-class count under a DegradedTopology; "
            "use DimWAR or OmniWAR for the pristine-vs-empty oracle"
        )
    t1, a1, p1 = _fresh(widths, terminals_per_router, algorithm, pattern)
    pristine = sweep_load(
        t1, a1, p1, list(rates), total_cycles=total_cycles, seed=seed
    )
    t2, a2, p2 = _fresh(
        widths, terminals_per_router, algorithm, pattern, faults=FaultSet()
    )
    empty = sweep_load(
        t2, a2, p2, list(rates), total_cycles=total_cycles, seed=seed
    )
    return compare_sweeps("pristine-vs-empty-faultset", pristine, empty)


def diff_trace_on_off(
    widths=(4, 4),
    terminals_per_router: int = 1,
    algorithm: str = "DimWAR",
    pattern: str = "UR",
    rates=(0.1, 0.3),
    total_cycles: int = 1000,
    seed: int = 1,
) -> OracleReport:
    """Lifecycle tracing attached vs absent, byte-identical sweep JSON.

    The :class:`repro.obs.Tracer` (and the windowed
    :class:`~repro.obs.TimeSeriesSampler`) must be pure observers: they
    read scored candidates the router already computed, never re-invoke
    ``candidates()`` or scoring, and never touch the jitter stream — so a
    traced sweep must measure exactly what an untraced one does.  Tracing
    runs at full sampling (``sample_every=1``) with the time-series sampler
    on, the most intrusive configuration.
    """
    from ..obs import TraceOptions

    t1, a1, p1 = _fresh(widths, terminals_per_router, algorithm, pattern)
    off = sweep_load(
        t1, a1, p1, list(rates), total_cycles=total_cycles, seed=seed
    )
    t2, a2, p2 = _fresh(widths, terminals_per_router, algorithm, pattern)
    on = sweep_load(
        t2, a2, p2, list(rates), total_cycles=total_cycles, seed=seed,
        trace=TraceOptions(sample_every=1, window=max(1, total_cycles // 8)),
    )
    return compare_sweeps("trace-on-vs-off", off, on)


def _tagged(report: OracleReport, algorithm: str) -> OracleReport:
    """Relabel a report so per-algorithm matrix rows stay distinguishable."""
    return OracleReport(f"{report.name}[{algorithm}]", report.ok, report.detail)


def run_all_oracles(
    widths=(4, 4),
    rates=(0.1, 0.3),
    total_cycles: int = 1000,
    workers: int = 2,
) -> list[OracleReport]:
    """Every differential oracle at one (small) problem size."""
    faults = FaultSet().fail_link(0, 0)
    reports = [
        diff_serial_parallel(
            widths=widths, rates=rates, total_cycles=total_cycles, workers=workers
        ),
        diff_serial_parallel(
            widths=widths, rates=rates, total_cycles=total_cycles,
            workers=workers, faults=faults,
        ),
        diff_cache_on_off(widths=widths, rates=rates, total_cycles=total_cycles),
        diff_kernel_on_off(widths=widths, rates=rates, total_cycles=total_cycles),
        diff_soa_on_off(widths=widths, rates=rates, total_cycles=total_cycles),
        diff_skip_on_off(widths=widths, rates=rates, total_cycles=total_cycles),
        diff_pristine_empty_faultset(
            widths=widths, rates=rates, total_cycles=total_cycles
        ),
        diff_trace_on_off(widths=widths, rates=rates, total_cycles=total_cycles),
        diff_shard_on_off(widths=widths, rates=rates, total_cycles=total_cycles),
        diff_shard_on_off(
            widths=widths, rates=rates, total_cycles=total_cycles, faults=faults
        ),
        diff_service_direct(
            widths=widths, rates=rates, total_cycles=total_cycles,
            workers=workers,
        ),
        diff_service_direct(
            widths=widths, rates=rates, total_cycles=total_cycles,
            workers=workers, faults=faults,
        ),
    ]
    # The successor-paper algorithms (FTHX's escape subnetwork, VCFree's
    # up*/down* order) must survive the same replay comparisons as the
    # paper's own: their candidate lists are memoised, SoA-compiled,
    # skip-compressed, and pickled across workers like everyone else's.
    for algo in ("FTHX", "VCFree"):
        reports += [
            _tagged(diff_serial_parallel(
                widths=widths, rates=rates, total_cycles=total_cycles,
                workers=workers, algorithm=algo, faults=faults,
            ), algo),
            _tagged(diff_soa_on_off(
                widths=widths, rates=rates, total_cycles=total_cycles,
                algorithm=algo,
            ), algo),
            _tagged(diff_skip_on_off(
                widths=widths, rates=rates, total_cycles=total_cycles,
                algorithm=algo,
            ), algo),
            _tagged(diff_pristine_empty_faultset(
                widths=widths, rates=rates, total_cycles=total_cycles,
                algorithm=algo,
            ), algo),
        ]
    return reports
