"""Runtime simulator sanitizer and differential oracles.

``repro.check`` is the simulator's trust layer: a set of cross-component
invariant checkers that attach to any live
:class:`~repro.network.simulator.Simulator` through its generic hook points
and cost nothing when not attached.  Two halves:

* :class:`Sanitizer` — a simulator process auditing flit conservation,
  credit accounting, stall/deadlock progress, and per-hop VC-class legality
  on a configurable cycle cadence (see :mod:`repro.check.sanitizer`);
* the differential oracles (:mod:`repro.check.oracle`) — replay one spec
  through independently-optimised execution paths (serial vs parallel
  workers, route cache on vs off, pristine topology vs empty fault set) and
  assert byte-identical results.

``python -m repro check`` runs the package self-test
(:func:`repro.check.selftest.run_selftest`), which includes *mutation
canaries*: deliberately seeded bugs (a leaked credit, a dropped flit, a
cyclic wait, an illegal VC hop, a diverged replay) that each checker must
catch — the checkers are themselves tested, not just trusted.
"""

from .oracle import (
    OracleReport,
    diff_cache_on_off,
    diff_pristine_empty_faultset,
    diff_serial_parallel,
    run_all_oracles,
)
from .sanitizer import Sanitizer, SanitizerError
from .selftest import run_selftest

__all__ = [
    "Sanitizer",
    "SanitizerError",
    "OracleReport",
    "diff_serial_parallel",
    "diff_cache_on_off",
    "diff_pristine_empty_faultset",
    "run_all_oracles",
    "run_selftest",
]
