"""The runtime sanitizer: cross-component invariant audits for a live run.

A :class:`Sanitizer` attaches to a :class:`~repro.network.simulator.Simulator`
as an ordinary process (:meth:`~repro.network.simulator.Simulator.add_process`)
plus, for VC-legality, a per-router route-observation hook.  The process call
site — the start of the compute phase, after channel deliveries settled — is a
consistency point: every credit consume/restore and buffer push/pop pair has
completed, so the invariants below hold *exactly*, not approximately.

Checkers (each individually switchable):

* **conservation** — every flit ever injected is either ejected or still in
  flight somewhere (channel pipelines, input buffers, staging queues,
  terminal receive buffers).  Faults never drop flits in this simulator
  (fail-stop at routing granularity with lossless drain), so the
  dropped-by-fault term is structurally zero and the identity is strict.
* **credits** — per credit-flow-controlled hop (the network's
  :class:`~repro.network.network.LinkRecord` wiring map), per VC::

      tracker.occupied(vc) == upstream staged flits + data flits in flight
                              + downstream buffer occupancy
                              + credits in flight back upstream

  plus the tracker's internal consistency (incremental ``occupied_total``
  against the per-VC counters).  This covers the fault paths too: a link
  that failed mid-run keeps its record and must still reconcile while its
  wormholes drain, and ``revoke_unstarted_routes`` must not touch credits.
* **deadlock** — a stall-horizon watchdog over a global progress counter
  (injections + ejections + router forwards + channel pushes).  When no
  progress happens for ``stall_horizon`` cycles while flits are in flight,
  the sanitizer builds the wait-for graph over committed routes and raises
  with the dependency cycle (router, port, VC, packet id, age) instead of
  letting the run hang silently.
* **vc_legality** — on every committed route: the chosen output VC belongs
  to the candidate's resource class, and the hop obeys the algorithm's own
  VC discipline (``RoutingAlgorithm.route_discipline_error``) — the
  distance-class rule ``VC_out = VC_in + 1`` for OmniWAR, the one-way
  escape-subnetwork order for FTHX, the up*/down* channel order for
  VCFree.  Each algorithm carries its own machine-checkable model of the
  invariant its deadlock-freedom proof rests on; the sanitizer just asks.

Overhead: zero when not attached (the hooks are a list and a ``None`` field);
attached with the default 64-cycle window it is a few percent on a loaded
4x4 run — numbers in docs/TESTING.md.

Example::

    >>> from repro.topology.hyperx import HyperX
    >>> from repro.core.dimwar import DimWAR
    >>> from repro.config import default_config
    >>> from repro.network.network import Network
    >>> from repro.network.simulator import Simulator
    >>> from repro.traffic.injection import SyntheticTraffic
    >>> from repro.traffic.patterns import UniformRandom
    >>> from repro.check import Sanitizer
    >>> topo = HyperX((2, 2), 1)
    >>> net = Network(topo, DimWAR(topo), default_config())
    >>> sim = Simulator(net)
    >>> sim.processes.append(SyntheticTraffic(net, UniformRandom(4), 0.1, seed=1))
    >>> san = Sanitizer(sim).attach()
    >>> sim.run(500)                    # audits run inside the cycle loop
    >>> san.audits > 0
    True
    >>> san.final_check()               # one last full audit
    >>> san.detach()
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..network.simulator import Simulator


class SanitizerError(AssertionError):
    """An invariant violation caught by the runtime sanitizer.

    ``checker`` names the check that fired (``"conservation"``,
    ``"credits"``, ``"deadlock"``, or ``"vc_legality"``) so tests — and the
    mutation self-test — can assert that a seeded bug trips the *right*
    checker, not merely any checker.
    """

    def __init__(self, checker: str, message: str):
        super().__init__(f"[{checker}] {message}")
        self.checker = checker


class Sanitizer:
    """Attachable runtime invariant auditor for one simulator.

    Parameters
    ----------
    sim:
        The simulator to watch.
    window:
        Cycles between periodic audits.  Smaller windows localise a
        violation more tightly in time but cost more; the default (64)
        matches ``run_until``'s check cadence.
    stall_horizon:
        Cycles without global forward progress before the deadlock checker
        fires.  Must comfortably exceed the worst legitimate stall —
        a credit round trip times the maximum wormhole length; the default
        (4096) is ~25x the scaled-default round trip.
    conservation, credits, deadlock, vc_legality:
        Individual checker switches (all on by default).
    """

    def __init__(
        self,
        sim: "Simulator",
        *,
        window: int = 64,
        stall_horizon: int = 4096,
        conservation: bool = True,
        credits: bool = True,
        deadlock: bool = True,
        vc_legality: bool = True,
    ):
        if window < 1:
            raise ValueError("audit window must be >= 1 cycle")
        if stall_horizon < window:
            raise ValueError("stall horizon must be >= the audit window")
        self.sim = sim
        self.network = sim.network
        self.window = window
        self.stall_horizon = stall_horizon
        self.check_conservation = conservation
        self.check_credits = credits
        self.check_deadlock = deadlock
        self.check_vc_legality = vc_legality

        self._attached = False
        self._hook = None  # bound route hook, captured once by attach()
        self._next_audit = sim.cycle
        self._last_progress = -1
        self._last_progress_cycle = sim.cycle
        # audit telemetry (surfaced by the self-test and docs)
        self.audits = 0
        self.routes_checked = 0

        net = self.network
        self._num_vcs = net.cfg.router.num_vcs
        # (router, out_port) -> (downstream router, downstream port), from
        # the wiring map: the edge relation of the wait-for graph.
        self._down_of = {
            rec.src: rec.dst for rec in net.links if rec.kind == "rr"
        }
        # Bound once: the algorithm's own VC-discipline model (distance
        # classes, escape ordering, up*/down* order, ...).
        self._discipline = net.algorithm.route_discipline_error

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------

    def attach(self) -> "Sanitizer":
        """Register with the simulator (process + route hooks); chainable."""
        if self._attached:
            raise RuntimeError("sanitizer already attached")
        self.sim.add_process(self)
        if self.check_vc_legality:
            # Bind once so detach() can recognise its own hook by identity.
            self._hook = self._on_route
            for r in self.network.routers:
                r.add_route_hook(self._hook)
        self._attached = True
        self._next_audit = self.sim.cycle
        return self

    def detach(self) -> None:
        """Unregister every hook; the simulator runs at full speed again."""
        if not self._attached:
            return
        self.sim.remove_process(self)
        if self.check_vc_legality:
            for r in self.network.routers:
                if self._hook in r._route_hooks:
                    r.remove_route_hook(self._hook)
            self._hook = None
        self._attached = False

    # ------------------------------------------------------------------
    # Per-cycle process (the simulator calls this every compute phase)
    # ------------------------------------------------------------------

    def __call__(self, cycle: int) -> None:
        if cycle >= self._next_audit:
            self.audit(cycle)
            self._next_audit = cycle + self.window

    # ------------------------------------------------------------------
    # Audits
    # ------------------------------------------------------------------

    def audit(self, cycle: int) -> None:
        """Run every enabled checker once, at one consistency point."""
        self.audits += 1
        if self.check_conservation:
            self._audit_conservation(cycle)
        if self.check_credits:
            self._audit_credits(cycle)
        if self.check_deadlock:
            self._audit_progress(cycle)

    def final_check(self, require_quiescent: bool = False) -> None:
        """One last audit at the current cycle.

        With ``require_quiescent`` the network must also be fully drained:
        no flit in flight, every credit restored, every output VC released,
        and injected == ejected exactly.  Use it after
        :meth:`~repro.network.simulator.Simulator.drain`; the default is
        lenient because measurement runs end with injection still on.
        """
        cycle = self.sim.cycle
        self.audit(cycle)
        if not require_quiescent:
            return
        net = self.network
        if not net.quiescent():
            raise SanitizerError(
                "conservation", f"cycle {cycle}: network not quiescent at final check"
            )
        inj, ej = net.total_injected_flits(), net.total_ejected_flits()
        if inj != ej:
            raise SanitizerError(
                "conservation",
                f"cycle {cycle}: drained but injected {inj} != ejected {ej}",
            )
        for rec in net.links:
            if rec.tracker.total_occupied() != 0:
                raise SanitizerError(
                    "credits",
                    f"cycle {cycle}: link {rec.label} drained but "
                    f"{rec.tracker.total_occupied()} credits still consumed",
                )
        for r in net.routers:
            for port, owners in enumerate(r.out_vc_owner):
                for vc, owner in enumerate(owners):
                    if owner is not None:
                        raise SanitizerError(
                            "credits",
                            f"cycle {cycle}: router {r.router_id} port {port} "
                            f"VC {vc} still owned by packet {owner} after drain",
                        )

    # -- flit conservation ---------------------------------------------

    def _audit_conservation(self, cycle: int) -> None:
        net = self.network
        inj = net.total_injected_flits()
        ej = net.total_ejected_flits()
        in_flight = net.flits_in_flight()
        if inj != ej + in_flight:
            raise SanitizerError(
                "conservation",
                f"cycle {cycle}: injected {inj} != ejected {ej} + "
                f"in-flight {in_flight} (delta {inj - ej - in_flight:+d}); "
                f"a flit was created or destroyed outside the protocol",
            )

    # -- credit accounting ---------------------------------------------

    def _audit_credits(self, cycle: int) -> None:
        num_vcs = self._num_vcs
        for rec in self.network.links:
            tracker = rec.tracker
            if not tracker.consistent():
                raise SanitizerError(
                    "credits",
                    f"cycle {cycle}: link {rec.label}: tracker internally "
                    f"inconsistent (credits {tracker.credits}, "
                    f"occupied_total {tracker.occupied_total})",
                )
            data_counts = [0] * num_vcs
            for vc, _flit in rec.data.pending_payloads():
                data_counts[vc] += 1
            credit_counts = [0] * num_vcs
            for vc in rec.credit.pending_payloads():
                credit_counts[vc] += 1
            staged = rec.staged
            downstream = rec.downstream.vcs
            for vc in range(num_vcs):
                expected = (
                    data_counts[vc]
                    + credit_counts[vc]
                    + downstream[vc].occupancy
                    + (len(staged[vc]) if staged is not None else 0)
                )
                have = tracker.occupied(vc)
                if have != expected:
                    raise SanitizerError(
                        "credits",
                        f"cycle {cycle}: link {rec.label} VC {vc}: tracker "
                        f"says {have} slots consumed but "
                        f"staged+in-flight+buffered+returning = {expected} "
                        f"({len(staged[vc]) if staged is not None else 0}+"
                        f"{data_counts[vc]}+{downstream[vc].occupancy}+"
                        f"{credit_counts[vc]}); a credit leaked or a flit "
                        f"bypassed flow control",
                    )

    # -- deadlock / stall watchdog -------------------------------------

    def _progress_counter(self) -> int:
        net = self.network
        n = net.total_injected_flits() + net.total_ejected_flits()
        for r in net.routers:
            n += r.flits_forwarded
        for ch in net.channels:
            n += ch.utilization_count
        return n

    def _audit_progress(self, cycle: int) -> None:
        progress = self._progress_counter()
        if progress != self._last_progress:
            self._last_progress = progress
            self._last_progress_cycle = cycle
            return
        stalled_for = cycle - self._last_progress_cycle
        if stalled_for < self.stall_horizon:
            return
        if self.network.flits_in_flight() == 0:
            # Nothing in the network: an idle simulator is not a deadlock.
            self._last_progress_cycle = cycle
            return
        self._raise_deadlock(cycle, stalled_for)

    def find_wait_cycle(self):
        """Cyclic dependency in the wait-for graph, or None.

        Nodes are ``(router, input port, VC)`` triples holding a committed
        route; each waits on the downstream input VC its route targets.
        Returns the node list of one cycle (in dependency order) when the
        graph is cyclic.  Exposed for tests and post-mortem debugging.
        """
        edges = {}
        for r in self.network.routers:
            rid = r.router_id
            for port, unit in enumerate(r.inputs):
                for vc, state in enumerate(unit.vcs):
                    route = state.route
                    if route is None:
                        continue
                    down = self._down_of.get((rid, route.out_port))
                    if down is not None:  # ejection hops leave the graph
                        edges[(rid, port, vc)] = (down[0], down[1], route.out_vc)
        # Iterative DFS with tri-colouring over the (out-degree <= 1) graph:
        # follow each chain until it terminates, repeats, or hits a settled
        # node.
        DONE = object()
        colour: dict = {}
        for start in edges:
            if colour.get(start) is DONE:
                continue
            path: list = []
            on_path: dict = {}
            node = start
            while True:
                if node in on_path:
                    return path[on_path[node]:]  # the cycle
                if node not in edges or colour.get(node) is DONE:
                    break
                on_path[node] = len(path)
                path.append(node)
                node = edges[node]
            for n in path:
                colour[n] = DONE
        return None

    def _describe_node(self, node, cycle: int) -> str:
        rid, port, vc = node
        router = self.network.routers[rid]
        state = router.inputs[port].vcs[vc]
        route = state.route
        head = state.fifo[0] if state.fifo else None
        if head is not None:
            pkt = head.packet
            age = cycle - pkt.create_cycle
            who = f"packet {pkt.pid} (age {age})"
        else:
            who = "no head flit"
        tgt = f"-> port {route.out_port} VC {route.out_vc}" if route else ""
        return f"router {rid} port {port} VC {vc}: {who} {tgt}"

    def _raise_deadlock(self, cycle: int, stalled_for: int) -> None:
        wait_cycle = self.find_wait_cycle()
        if wait_cycle is not None:
            lines = [self._describe_node(n, cycle) for n in wait_cycle]
            raise SanitizerError(
                "deadlock",
                f"cycle {cycle}: no forward progress for {stalled_for} "
                f"cycles; cyclic wait ({len(wait_cycle)} nodes):\n  "
                + "\n  ".join(lines),
            )
        # No wait cycle: a stall (e.g. a starved resource), still fatal.
        blocked = []
        for r in self.network.routers:
            for port, unit in enumerate(r.inputs):
                for vc, state in enumerate(unit.vcs):
                    if state.fifo:
                        blocked.append(
                            self._describe_node((r.router_id, port, vc), cycle)
                        )
                    if len(blocked) >= 10:
                        break
        raise SanitizerError(
            "deadlock",
            f"cycle {cycle}: no forward progress for {stalled_for} cycles "
            f"with {self.network.flits_in_flight()} flits in flight; no "
            f"wait cycle found (livelock or starved resource).  Blocked "
            f"heads:\n  " + "\n  ".join(blocked or ["(none)"]),
        )

    # -- VC-class legality (router route hook) -------------------------

    def _on_route(self, cycle, router, port, vc, ctx, cand, out_vc, scored=None) -> None:
        self.routes_checked += 1
        vc_map = self.network.vc_map
        out_class = vc_map.class_of(out_vc)
        if out_class != cand.vc_class:
            raise SanitizerError(
                "vc_legality",
                f"cycle {cycle}: router {router.router_id} packet "
                f"{ctx.packet.pid}: output VC {out_vc} is in class "
                f"{out_class}, but the candidate declared class "
                f"{cand.vc_class}",
            )
        problem = self._discipline(ctx, cand)
        if problem is not None:
            raise SanitizerError(
                "vc_legality",
                f"cycle {cycle}: router {router.router_id} packet "
                f"{ctx.packet.pid}: {problem}",
            )
