"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``sweep``     load-latency sweep of one algorithm/pattern (Figure 6 style)
``stencil``   27-point stencil run per algorithm (Figure 8 style)
``figure``    regenerate a paper figure/table by name
``faults``    mid-run fault-injection transient (see docs/FAULTS.md)
``trace``     flit/packet lifecycle tracing + time series (docs/OBSERVABILITY.md)
``check``     runtime-sanitizer self-test + differential oracles (docs/TESTING.md)
``bench``     simulator perf microbenchmarks; regenerates BENCH_sim.json
``serve``     sweep-farm HTTP experiment service (docs/SERVICE.md)
``list``      available algorithms, patterns, figures, and scales

Every subcommand reports bad flag combinations (and unreadable input
files) through the argparse error path: a usage line plus the message on
stderr, exit code 2 — never a raw traceback.

Examples::

    python -m repro sweep --algorithm DimWAR --pattern URBy --rates 0.1 0.3 0.5
    python -m repro stencil --algorithms DOR OmniWAR --mode halo
    python -m repro figure fig6g --scale smoke
    python -m repro figure table1
    python -m repro faults --fail-links 3 --algorithms DimWAR OmniWAR
    python -m repro faults --schedule myfaults.json --scale small
    python -m repro faults --compare --fault-counts 0 1 2 4 --widths 8 8
    python -m repro sweep --algorithm OmniWAR --check
    python -m repro sweep --algorithm OmniWAR --widths 8 8 8 --shards 4
    python -m repro trace --algorithm OmniWAR --rate 0.3 --window 200 --heatmap vc
    python -m repro trace --golden DimWAR --jsonl /tmp/dimwar.jsonl
    python -m repro check
    python -m repro bench --compare
    python -m repro serve --port 8035 --workers 4
"""

from __future__ import annotations

import argparse
import os
import sys

from .analysis.report import format_table
from .analysis.sweep import sweep_load
from .core.registry import PAPER_ALGORITHMS, algorithm_names, make_algorithm
from .experiments import (
    faults as faults_experiment,
    fig1_paths,
    fig2_scalability,
    fig3_cost,
    fig4_topologies,
    fig5_vcusage,
    fig6_synthetic,
    fig7_model,
    fig8_stencil,
    irregular,
    table1_comparison,
    table_area,
    transient,
)
from .experiments.common import SCALES, get_scale, resolve_workers
from .topology.hyperx import HyperX
from .traffic.patterns import pattern_by_name

# Each entry takes (scale, workers); only the sweep-grid figures can use
# the worker pool, the rest ignore it.
FIGURES = {
    "fig1": lambda scale, workers: fig1_paths.render(fig1_paths.run()),
    "fig2": lambda scale, workers: fig2_scalability.render(fig2_scalability.run()),
    "fig3": lambda scale, workers: fig3_cost.render(fig3_cost.run()),
    "fig4": lambda scale, workers: fig4_topologies.render(fig4_topologies.run(scale)),
    "fig5": lambda scale, workers: fig5_vcusage.render(fig5_vcusage.run()),
    "fig6g": lambda scale, workers: fig6_synthetic.render_throughput_chart(
        fig6_synthetic.run_throughput_chart(scale=scale, workers=workers)
    ),
    "fig7": lambda scale, workers: fig7_model.run(),
    "fig8": lambda scale, workers: fig8_stencil.render(fig8_stencil.run(scale=scale)),
    "table1": lambda scale, workers: table1_comparison.render(table1_comparison.run()),
    "irregular": lambda scale, workers: irregular.render(irregular.run(scale=scale)),
    "table_area": lambda scale, workers: table_area.render(table_area.run()),
    "transient": lambda scale, workers: transient.render(transient.run(scale=scale)),
    "faults": lambda scale, workers: faults_experiment.render(
        faults_experiment.run(scale=scale)
    ),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Practical and Efficient Incremental "
        "Adaptive Routing for HyperX Networks' (SC '19)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("sweep", help="load-latency sweep (Figure 6 style)")
    p.add_argument("--algorithm", default="DimWAR", choices=algorithm_names())
    p.add_argument("--pattern", default="UR",
                   choices=["UR", "BC", "URBx", "URBy", "URBz", "S2", "DCR"])
    p.add_argument("--widths", type=int, nargs="+", default=[3, 3, 3])
    p.add_argument("--terminals", type=int, default=2)
    p.add_argument("--rates", type=float, nargs="+",
                   default=[0.1, 0.2, 0.3, 0.4, 0.5])
    p.add_argument("--cycles", type=int, default=2500)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--workers", type=int, default=None,
                   help="fan load points over N worker processes "
                   "(0 = all cores; default: serial)")
    p.add_argument("--shards", type=int,
                   default=int(os.environ.get("REPRO_SHARDS", "0")),
                   help="split each point across N shard processes "
                   "(repro.network.shard; default: $REPRO_SHARDS or 0 "
                   "= single process)")
    p.add_argument("--check", action="store_true",
                   help="attach the runtime sanitizer to every point "
                   "(invariant audits; see docs/TESTING.md)")

    p = sub.add_parser("stencil", help="27-point stencil run (Figure 8 style)")
    p.add_argument("--algorithms", nargs="+", default=list(PAPER_ALGORITHMS),
                   choices=algorithm_names())
    p.add_argument("--mode", default="full",
                   choices=["full", "halo", "collective"])
    p.add_argument("--iterations", type=int, default=1)
    p.add_argument("--scale", default="smoke", choices=sorted(SCALES))
    p.add_argument("--seed", type=int, default=5)

    p = sub.add_parser("figure", help="regenerate a paper figure/table")
    p.add_argument("name", choices=sorted(FIGURES))
    p.add_argument("--scale", default="smoke", choices=sorted(SCALES))
    p.add_argument("--workers", type=int, default=None,
                   help="worker processes for sweep-grid figures "
                   "(0 = all cores; default: serial)")

    p = sub.add_parser(
        "faults", help="mid-run fault-injection transient (docs/FAULTS.md)"
    )
    p.add_argument("--algorithms", nargs="+", default=None,
                   choices=algorithm_names(),
                   help="fault-capable algorithms to run (default: "
                   "DOR DimWAR OmniWAR; with --compare also FTHX VCFree)")
    p.add_argument("--scale", default="smoke", choices=sorted(SCALES))
    p.add_argument("--rate", type=float, default=0.2,
                   help="offered load in flits/cycle/terminal")
    p.add_argument("--fail-links", type=int, default=2,
                   help="random link failures injected mid-run")
    p.add_argument("--fail-routers", type=int, default=0,
                   help="random router failures injected mid-run")
    p.add_argument("--fault-seed", type=int, default=7,
                   help="seed for the connectivity-preserving fault sample")
    p.add_argument("--schedule", default=None, metavar="FILE",
                   help="JSON fault-schedule file (overrides the random "
                   "--fail-links/--fail-routers sample)")
    p.add_argument("--seed", type=int, default=4, help="traffic seed")
    p.add_argument("--check", action="store_true",
                   help="attach the runtime sanitizer for the whole "
                   "transient, fault event and drain included")
    p.add_argument("--compare", action="store_true",
                   help="head-to-head grid: every algorithm through the "
                   "same fault samples at each --fault-counts value "
                   "(delivered fraction, settling, saturation throughput)")
    p.add_argument("--fault-counts", type=int, nargs="+", default=[0, 1, 2, 4],
                   metavar="K", help="link-failure counts of the --compare "
                   "grid (default: 0 1 2 4)")
    p.add_argument("--widths", type=int, nargs="+", default=None,
                   help="override the scale's topology widths "
                   "(e.g. --widths 8 8 for the docs' 8x8 grid)")
    p.add_argument("--terminals", type=int, default=None,
                   help="terminals per router for --widths (default: "
                   "the scale's)")
    p.add_argument("--no-saturation", action="store_true",
                   help="--compare: skip the saturation sweeps (transient "
                   "grid only; the CI smoke step uses this)")
    p.add_argument("--granularity", type=float, default=None,
                   help="--compare: saturation sweep step (default: the "
                   "scale's)")
    p.add_argument("--max-rate", type=float, default=0.7,
                   help="--compare: highest offered load probed by the "
                   "saturation sweeps")
    p.add_argument("--workers", type=int, default=None,
                   help="--compare: fan saturation sweep points over N "
                   "worker processes (0 = all cores; default: serial)")

    p = sub.add_parser(
        "trace",
        help="record a flit/packet lifecycle trace (docs/OBSERVABILITY.md)",
    )
    p.add_argument("--algorithm", default="DimWAR", choices=algorithm_names())
    p.add_argument("--pattern", default="UR",
                   choices=["UR", "BC", "URBx", "URBy", "URBz", "S2", "DCR"])
    p.add_argument("--widths", type=int, nargs="+", default=[4, 4])
    p.add_argument("--terminals", type=int, default=1)
    p.add_argument("--rate", type=float, default=0.3,
                   help="offered load in flits/cycle/terminal")
    p.add_argument("--cycles", type=int, default=400)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--sample-every", type=int, default=1, metavar="N",
                   help="trace every Nth injected packet (default: all)")
    p.add_argument("--start", type=int, default=0,
                   help="first cycle to record events in")
    p.add_argument("--end", type=int, default=None,
                   help="record events before this cycle only")
    p.add_argument("--capacity", type=int, default=1 << 16,
                   help="ring-buffer capacity (oldest events drop beyond it)")
    p.add_argument("--window", type=int, default=0, metavar="CYCLES",
                   help="also sample windowed time series at this window size")
    p.add_argument("--jsonl", default=None, metavar="FILE",
                   help="write the event stream as JSON lines")
    p.add_argument("--chrome", default=None, metavar="FILE",
                   help="write Chrome trace-event JSON "
                   "(chrome://tracing / ui.perfetto.dev)")
    p.add_argument("--heatmap", default=None, choices=["router", "vc"],
                   help="print an ASCII occupancy heatmap (needs --window)")
    p.add_argument("--profile", action="store_true",
                   help="attribute wall-clock time to simulator phases")
    p.add_argument("--golden", default=None, metavar="ALGO",
                   help="run the pinned golden-trace scenario for ALGO "
                   "instead of the flags above (tests/golden corpus)")

    p = sub.add_parser(
        "check",
        help="run the repro.check self-test: sanitized reference runs, "
        "differential oracles, and the mutation canaries",
    )
    p.add_argument("--quick", action="store_true",
                   help="skip the (slower) differential oracles")

    p = sub.add_parser(
        "bench",
        help="run the simulator perf microbenchmarks and regenerate "
        "the recorded summary (docs/SIMULATOR.md, performance notes)",
    )
    p.add_argument("--out", default="BENCH_sim.json", metavar="FILE",
                   help="summary file to regenerate (default: BENCH_sim.json)")
    p.add_argument("--compare", action="store_true",
                   help="print speedup vs the recorded file instead of "
                   "rewriting it")
    p.add_argument("--only", nargs="+", default=None, metavar="NAME",
                   help="run a subset of the benchmarks by name")
    p.add_argument("--xl", action="store_true",
                   help="also run the target-scale 16x16x16 scenarios "
                   "(tens of seconds and gigabytes of state each)")

    p = sub.add_parser(
        "serve",
        help="run the sweep-farm HTTP experiment service (docs/SERVICE.md)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8035,
                   help="TCP port (0 = ephemeral; default: 8035)")
    p.add_argument("--workers", type=int, default=None,
                   help="ProcessPool workers per sweep job "
                   "(0 = all cores; default: serial)")
    p.add_argument("--queue-depth", type=int, default=64,
                   help="max queued jobs before submissions get 503")
    p.add_argument("--rate-limit", type=float, default=20.0,
                   help="requests/second/client before 429 (0 = unlimited)")
    p.add_argument("--burst", type=int, default=40,
                   help="per-client token-bucket burst capacity")
    p.add_argument("--memo-root", default="benchmarks/output/memo",
                   metavar="DIR",
                   help="shared content-addressed result cache directory")
    p.add_argument("--job-log", default="benchmarks/output/service_jobs.jsonl",
                   metavar="FILE",
                   help="JSONL job journal (replayed on restart)")

    sub.add_parser("list", help="list algorithms, patterns, figures, scales")
    return parser


def _cmd_sweep(args) -> str:
    if args.shards < 0:
        raise ValueError("--shards must be >= 0")
    topo = HyperX(tuple(args.widths), args.terminals)
    algo = make_algorithm(args.algorithm, topo)
    pattern = pattern_by_name(args.pattern, topo)
    sweep = sweep_load(
        topo, algo, pattern, args.rates, total_cycles=args.cycles,
        seed=args.seed, workers=resolve_workers(args.workers),
        check=args.check, shards=args.shards,
    )
    rows = [
        [
            f"{p.offered_rate:.2f}",
            f"{p.accepted_rate:.3f}",
            f"{p.mean_latency:.1f}" if p.stable else "saturated",
            f"{p.mean_hops:.2f}",
            f"{p.mean_deroutes:.3f}",
        ]
        for p in sweep.points
    ]
    return format_table(
        ["offered", "accepted", "latency", "hops", "deroutes"],
        rows,
        title=f"{args.algorithm} on {args.pattern}, HyperX {tuple(args.widths)} "
        f"T={args.terminals} (max stable: {sweep.saturation_rate:.3f})",
    )


def _cmd_stencil(args) -> str:
    result = fig8_stencil.run(
        algorithms=tuple(args.algorithms),
        modes=(args.mode,),
        iteration_counts=(args.iterations,),
        scale=args.scale,
        seed=args.seed,
    )
    return fig8_stencil.render(result, algorithms=tuple(args.algorithms))


def _cmd_faults(args) -> str:
    from .experiments import fault_compare

    topology = None
    if args.widths is not None:
        tpr = (
            args.terminals if args.terminals is not None
            else get_scale(args.scale).terminals_per_router
        )
        topology = HyperX(tuple(args.widths), tpr)
    elif args.terminals is not None:
        raise ValueError("--terminals needs --widths")
    if args.compare:
        if args.schedule is not None:
            raise ValueError(
                "--schedule pins one fault set; --compare sweeps fault "
                "counts — pick one"
            )
        if any(k < 0 for k in args.fault_counts):
            raise ValueError("--fault-counts values must be >= 0")
        algorithms = tuple(
            args.algorithms if args.algorithms is not None
            else fault_compare.COMPARE_ALGORITHMS
        )
        fault_compare.validate_fault_capable(algorithms)
        result = fault_compare.run_fault_comparison(
            algorithms=algorithms,
            fault_counts=tuple(args.fault_counts),
            scale=args.scale,
            topology=topology,
            rate=args.rate,
            fault_seed=args.fault_seed,
            seed=args.seed,
            saturation=not args.no_saturation,
            granularity=args.granularity,
            max_rate=args.max_rate,
            workers=resolve_workers(args.workers),
            check=args.check,
        )
        return fault_compare.render(result)
    algorithms = tuple(
        args.algorithms if args.algorithms is not None
        else ("DOR", "DimWAR", "OmniWAR")
    )
    # Reject non-fault-capable names before any run burns simulation
    # time (and instead of a mid-sequence NoRouteError traceback).
    fault_compare.validate_fault_capable(algorithms)
    schedule = None
    if args.schedule is not None:
        from .faults.model import FaultSchedule

        schedule = FaultSchedule.load(args.schedule)
    results = faults_experiment.run(
        algorithms=algorithms,
        scale=args.scale,
        rate=args.rate,
        fail_links=args.fail_links,
        fail_routers=args.fail_routers,
        fault_seed=args.fault_seed,
        seed=args.seed,
        schedule=schedule,
        topology=topology,
        check=args.check,
    )
    return faults_experiment.render(results)


def _cmd_trace(args) -> str:
    from .obs import (
        PhaseProfiler,
        TimeSeriesSampler,
        TraceOptions,
        Tracer,
        occupancy_heatmap,
        write_chrome_trace,
        write_jsonl,
    )

    prof = None
    if args.golden is not None:
        if args.profile:
            raise ValueError("--profile does not apply to --golden runs")
        if args.window or args.heatmap:
            raise ValueError(
                "--window/--heatmap do not apply to --golden runs (the "
                "pinned scenario records lifecycle events only)"
            )
        from .obs.golden import golden_tracer

        tracer = golden_tracer(args.golden)
        sampler = None
        label = f"golden scenario {args.golden} (see repro.obs.golden)"
    else:
        if args.heatmap and not args.window:
            raise ValueError("--heatmap needs the time-series sampler (--window N)")
        from .config import default_config
        from .network.network import Network
        from .network.simulator import Simulator
        from .traffic.injection import SyntheticTraffic

        opts = TraceOptions(
            sample_every=args.sample_every, start=args.start, end=args.end,
            capacity=args.capacity, window=args.window,
        )
        topo = HyperX(tuple(args.widths), args.terminals)
        algo = make_algorithm(args.algorithm, topo)
        pattern = pattern_by_name(args.pattern, topo)
        net = Network(topo, algo, default_config())
        sim = Simulator(net)
        sim.add_process(SyntheticTraffic(net, pattern, args.rate, seed=args.seed))
        tracer = Tracer(sim, opts).attach()
        sampler = (
            TimeSeriesSampler(sim, window=args.window).attach()
            if args.window else None
        )
        if args.profile:
            prof = PhaseProfiler(sim)
            prof.run(args.cycles)
        else:
            sim.run(args.cycles)
        if sampler is not None:
            sampler.finalize(sim.cycle)
            sampler.detach()
        tracer.detach()
        label = (
            f"{args.algorithm} on {args.pattern}, HyperX {tuple(args.widths)} "
            f"T={args.terminals} rate={args.rate} over {args.cycles} cycles"
        )
    ring = tracer.ring
    counts = ring.counts()
    out = [
        f"trace: {label}",
        f"events: recorded={ring.recorded} retained={len(ring)} "
        f"dropped={ring.dropped} packets_sampled={tracer.packets_sampled}",
        "  " + "  ".join(f"{t}={n}" for t, n in counts.items()),
    ]
    if args.jsonl:
        out.append(f"wrote {write_jsonl(tracer.events(), args.jsonl)}")
    if args.chrome:
        path = write_chrome_trace(
            tracer.events(), args.chrome,
            sampler.samples if sampler is not None else None,
        )
        out.append(f"wrote {path} (open in chrome://tracing or ui.perfetto.dev)")
    if sampler is not None:
        out.append("")
        out.append(sampler.format_table())
        if args.heatmap:
            out.append("")
            out.append(occupancy_heatmap(sampler.samples, args.heatmap))
    if prof is not None:
        out.append("")
        out.append(prof.format_report())
    return "\n".join(out)


def _cmd_bench(args) -> str:
    from .analysis.bench import (
        format_comparison,
        format_summary,
        load_summary,
        merge_seed_baselines,
        run_benchmarks,
        write_summary,
    )

    recorded = load_summary(args.out)
    summary = merge_seed_baselines(
        run_benchmarks(args.only, xl=args.xl), recorded
    )
    if args.compare:
        if recorded is None:
            raise ValueError(
                f"--compare needs a recorded summary at {args.out!r}"
            )
        return format_comparison(summary, recorded)
    if args.only is not None:
        raise ValueError(
            "--only times a subset and cannot regenerate the full summary; "
            "combine it with --compare"
        )
    write_summary(summary, args.out)
    return f"{format_summary(summary)}\n\nwrote {args.out}"


def _cmd_serve(args) -> int:
    """Run the experiment service until SIGINT/SIGTERM, then exit cleanly.

    Flag validation errors raise ValueError into the shared argparse
    error path (exit code 2); a clean interrupt exits 0 so supervised
    shutdowns (the CI smoke job sends SIGTERM) read as success.
    """
    import signal

    from .service import ExperimentService

    if not 0 <= args.port <= 65535:
        raise ValueError("port must be in [0, 65535]")
    if args.queue_depth < 1:
        raise ValueError("queue-depth must be >= 1")
    if args.rate_limit < 0:
        raise ValueError("rate-limit must be >= 0 (0 = unlimited)")
    if args.rate_limit > 0 and args.burst < 1:
        raise ValueError("burst must be >= 1")
    service = ExperimentService(
        host=args.host, port=args.port,
        workers=resolve_workers(args.workers),
        memo_root=args.memo_root, job_log=args.job_log,
        max_depth=args.queue_depth,
        rate_limit=args.rate_limit, burst=args.burst,
    )

    def _interrupt(signum, frame):  # pragma: no cover - signal plumbing
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _interrupt)
    print(f"repro service listening on {service.url} "
          f"(memo: {args.memo_root}, job log: {args.job_log})", flush=True)
    try:
        service.serve_forever()  # pragma: no cover - blocks until signal
    except KeyboardInterrupt:
        pass
    finally:
        service.shutdown()
        print("repro service: clean shutdown", flush=True)
    return 0


def _cmd_list() -> str:
    lines = [
        "algorithms : " + ", ".join(algorithm_names()),
        "patterns   : UR, BC, URBx, URBy, URBz, S2, DCR",
        "figures    : " + ", ".join(sorted(FIGURES)),
        "scales     : " + ", ".join(sorted(SCALES)),
    ]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "sweep":
            print(_cmd_sweep(args))
        elif args.command == "stencil":
            print(_cmd_stencil(args))
        elif args.command == "figure":
            print(FIGURES[args.name](get_scale(args.scale),
                                     resolve_workers(args.workers)))
        elif args.command == "faults":
            print(_cmd_faults(args))
        elif args.command == "trace":
            print(_cmd_trace(args))
        elif args.command == "check":
            from .check.selftest import run_selftest

            return 0 if run_selftest(oracles=not args.quick) else 1
        elif args.command == "bench":
            print(_cmd_bench(args))
        elif args.command == "serve":
            return _cmd_serve(args)
        elif args.command == "list":
            print(_cmd_list())
    except (ValueError, OSError) as e:
        # One error path for every subcommand: bad flag combinations and
        # unreadable input files become argparse usage errors (message on
        # stderr, exit code 2), never raw tracebacks.
        parser.error(f"{args.command}: {e}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
