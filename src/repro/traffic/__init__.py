"""Synthetic traffic: the paper's Table 3 patterns, sizes, and injection."""

from .base import TrafficPattern
from .injection import BurstyTraffic, SyntheticTraffic
from .patterns import (
    BitComplement,
    DimensionComplementReverse,
    Hotspot,
    RandomPermutation,
    Swap2,
    Tornado,
    Transpose,
    UniformRandom,
    UniformRandomBisection,
    paper_patterns,
)
from .switching import PhasedTraffic
from .sizes import BimodalSize, FixedSize, SizeDistribution, UniformSize

__all__ = [
    "TrafficPattern",
    "UniformRandom",
    "BitComplement",
    "UniformRandomBisection",
    "Swap2",
    "DimensionComplementReverse",
    "Tornado",
    "Transpose",
    "RandomPermutation",
    "Hotspot",
    "paper_patterns",
    "SizeDistribution",
    "FixedSize",
    "UniformSize",
    "BimodalSize",
    "SyntheticTraffic",
    "BurstyTraffic",
    "PhasedTraffic",
]
