"""Time-phased traffic: the pattern changes while the network runs.

The paper's stencil analysis (Section 6.2) stresses that real workloads
switch between phases (bandwidth-bound halo exchange, latency-bound
collectives) and that "adaptive routing algorithms need to quickly adapt to
changing network conditions".  :class:`PhasedTraffic` provides the synthetic
version: an injection process whose destination pattern switches at
scheduled cycles (e.g. benign UR -> adversarial BC), used by the transient-
response experiment.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..network.types import Packet
from .base import TrafficPattern
from .injection import _ScanningTraffic
from .sizes import SizeDistribution, UniformSize

if TYPE_CHECKING:  # pragma: no cover
    from ..network.network import Network


class PhasedTraffic(_ScanningTraffic):
    """Open-loop injection whose pattern follows a phase schedule.

    ``phases`` is a list of ``(start_cycle, pattern)`` with strictly
    increasing start cycles; the first phase must start at cycle 0.

    Skip-ahead compatible via :class:`~repro.traffic.injection._ScanningTraffic`;
    the phase is resolved at *apply* time (when a scanned hit's cycle
    executes), so scanning ahead across a phase boundary still stamps each
    packet with the pattern of its injection cycle.
    """

    def __init__(
        self,
        network: "Network",
        phases: list[tuple[int, TrafficPattern]],
        rate: float,
        size_dist: SizeDistribution | None = None,
        seed: int = 1,
    ):
        if not phases or phases[0][0] != 0:
            raise ValueError("the first phase must start at cycle 0")
        starts = [s for s, _ in phases]
        if starts != sorted(starts) or len(set(starts)) != len(starts):
            raise ValueError("phase start cycles must be strictly increasing")
        if not 0.0 <= rate <= 1.0:
            raise ValueError("offered rate is in flits/cycle/terminal, [0, 1]")
        n = network.topology.num_terminals
        for _, pattern in phases:
            if pattern.num_terminals != n:
                raise ValueError("pattern sized for a different network")
        self.network = network
        self.phases = list(phases)
        self.rate = rate
        self.size_dist = size_dist or UniformSize(1, 16)
        self.rng = np.random.default_rng(seed)
        self._init_scan()
        self._p = rate / self.size_dist.mean
        self._num_terminals = n
        self._phase_idx = 0

    def current_pattern(self, cycle: int) -> TrafficPattern:
        while (
            self._phase_idx + 1 < len(self.phases)
            and cycle >= self.phases[self._phase_idx + 1][0]
        ):
            self._phase_idx += 1
        return self.phases[self._phase_idx][1]

    def _dormant(self) -> bool:
        return self._p <= 0.0

    def _scan_block(self, cycle: int) -> np.ndarray:
        draws = self.rng.random(self._num_terminals)
        return np.nonzero(draws < self._p)[0]

    def _apply(self, cycle: int, srcs: np.ndarray) -> None:
        pattern = self.current_pattern(cycle)
        for src in srcs:
            src = int(src)
            dst = pattern.dest(src, self.rng)
            size = self.size_dist.sample(self.rng)
            self.network.terminals[src].offer(
                Packet(src, dst, size, create_cycle=cycle)
            )
            self.packets_generated += 1
            self.flits_generated += size
