"""Open-loop synthetic injection process.

Each terminal independently starts a new packet each cycle with probability
``rate / mean_packet_size``, so that the *offered load* equals ``rate`` flits
per cycle per terminal (1.0 = terminal-channel capacity).  Generation is
open-loop: packets keep accumulating in the source queue even when the
network cannot accept them, which is what the saturation detector observes.

The per-cycle Bernoulli draws are vectorized over terminals with NumPy (the
generation loop showed up in profiles of early versions; see the optimization
guide's "vectorize the measured bottleneck" rule).

**Skip-ahead support.**  The cycle-compressing engine
(:mod:`repro.network.skip`) only calls a process on cycles where something
can happen, so an injection process must be able to *bound* its next
injection without being ticked through the gap.  :class:`_ScanningTraffic`
provides that for every generator here: draws are pinned to cycle numbers
via a scan cursor (``_scan_cycle`` = highest cycle whose per-cycle RNG block
has been drawn), ``next_wakeup`` scans blocks forward — in exact per-cycle
order, one block per cycle — until it finds a hit (buffered in ``_pending``
with its destination/size draws deferred to apply time) or exhausts a small
lookahead window, and ``__call__`` applies the buffered hit when its cycle
executes.  The RNG consumption order is therefore *identical* to per-cycle
operation: one Bernoulli block per cycle in cycle order, with dest/size
draws interleaved exactly at hit cycles — which is what keeps skip-on and
skip-off runs (and the pre-skip golden traces) byte-identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..network.types import Packet, _next_packet_id
from .base import TrafficPattern
from .sizes import SizeDistribution, UniformSize

if TYPE_CHECKING:  # pragma: no cover
    from ..network.network import Network


class _ScanningTraffic:
    """Shared machinery making an injection process skip-safe.

    Subclasses implement ``_scan_block(cycle) -> ndarray`` (draw exactly the
    RNG block per-cycle operation would draw for ``cycle`` and return the
    hit sources, possibly empty) and ``_apply(cycle, srcs)`` (draw dest/size
    and offer the packets — the only point that touches network state), and
    may override ``_dormant()`` for configurations that provably never
    inject (those must not consume RNG, matching per-cycle behaviour).

    The scan cursor anchors lazily at first contact (``__call__`` or
    ``next_wakeup``), so a process attached mid-run behaves exactly like the
    pre-scan code: its first block is drawn for its first observed cycle.
    """

    #: Compatible with the SoA datapath (repro.network.soa): only calls
    #: Terminal.offer(), which both engines handle identically.
    soa_safe = True
    #: Compatible with cycle skip-ahead (repro.network.skip): next_wakeup
    #: bounds the next injection by scanning the Bernoulli stream forward.
    skip_safe = True
    #: Cycles next_wakeup scans past ``cycle`` before settling for the
    #: conservative "might inject right after the window" bound.  Purely a
    #: work/precision trade-off — any value is correct.
    _lookahead = 64

    def _init_scan(self) -> None:
        self.enabled = True
        self.packets_generated = 0
        self.flits_generated = 0
        # Highest cycle whose per-cycle RNG block has been drawn; None
        # until the first contact anchors the cursor.
        self._scan_cycle: int | None = None
        # At most one buffered scan hit: (cycle, sources).  Dest/size draws
        # happen at apply time, preserving per-cycle RNG order.
        self._pending: tuple[int, np.ndarray] | None = None

    def _dormant(self) -> bool:
        return False

    def _scan_block(self, cycle: int) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def _apply(self, cycle: int, srcs: np.ndarray) -> None:  # pragma: no cover
        raise NotImplementedError

    def __call__(self, cycle: int) -> None:
        if not self.enabled or self._dormant():
            return
        if self._scan_cycle is None:
            self._scan_cycle = cycle - 1
        p = self._pending
        if p is not None:
            if p[0] == cycle:
                self._pending = None
                self._apply(cycle, p[1])
                return
            if p[0] < cycle:
                raise RuntimeError(
                    f"engine skipped past a buffered injection at cycle "
                    f"{p[0]} (now at {cycle}): next_wakeup contract violated"
                )
            return  # buffered hit lies ahead; nothing to do this cycle
        while self._scan_cycle < cycle:
            c = self._scan_cycle + 1
            srcs = self._scan_block(c)
            self._scan_cycle = c
            if len(srcs):
                if c < cycle:
                    raise RuntimeError(
                        f"engine skipped an injection at cycle {c} (now at "
                        f"{cycle}): next_wakeup contract violated"
                    )
                self._apply(c, srcs)

    def next_wakeup(self, cycle: int) -> int | None:
        """Earliest cycle >= ``cycle`` at which this process may inject.

        Scans (and thereby draws) Bernoulli blocks forward up to
        ``_lookahead`` cycles; a hit is buffered for ``__call__`` to apply
        when its cycle executes.  Returns a conservative bound — one past
        the scanned range — when the window is dry.
        """
        if not self.enabled or self._dormant():
            return None
        if self._scan_cycle is None:
            self._scan_cycle = cycle - 1
        p = self._pending
        if p is not None:
            return p[0]
        limit = cycle + self._lookahead
        while self._scan_cycle < limit:
            c = self._scan_cycle + 1
            srcs = self._scan_block(c)
            self._scan_cycle = c
            if len(srcs):
                self._pending = (c, srcs)
                return c
        return self._scan_cycle + 1

    def stop(self) -> None:
        self.enabled = False


class SyntheticTraffic(_ScanningTraffic):
    """A simulator process generating synthetic traffic on every terminal."""

    def __init__(
        self,
        network: "Network",
        pattern: TrafficPattern,
        rate: float,
        size_dist: SizeDistribution | None = None,
        seed: int = 1,
        warmup_mark: int = 0,
        sources: "list[int] | None" = None,
    ):
        if not 0.0 <= rate <= 1.0:
            raise ValueError("offered rate is in flits/cycle/terminal, [0, 1]")
        if pattern.num_terminals != network.topology.num_terminals:
            raise ValueError("pattern sized for a different network")
        self.network = network
        self.pattern = pattern
        self.rate = rate
        self.size_dist = size_dist or UniformSize(1, 16)
        self.rng = np.random.default_rng(seed)
        self._init_scan()
        self._num_terminals = network.topology.num_terminals
        #: restrict generation to these terminals (fault experiments exclude
        #: the detached terminals of statically-failed routers); None keeps
        #: the default all-terminals path byte-identical.
        self._sources = None
        if sources is not None:
            self._sources = np.array(sorted(set(int(s) for s in sources)))
            if self._sources.size == 0:
                raise ValueError("sources must name at least one terminal")
            if self._sources[0] < 0 or self._sources[-1] >= self._num_terminals:
                raise ValueError("source terminal id out of range")
        self._p = rate / self.size_dist.mean

    def _dormant(self) -> bool:
        return self._p <= 0.0

    def _scan_block(self, cycle: int) -> np.ndarray:
        if self._sources is None:
            draws = self.rng.random(self._num_terminals)
            return np.nonzero(draws < self._p)[0]
        draws = self.rng.random(self._sources.size)
        return self._sources[draws < self._p]

    def _apply(self, cycle: int, srcs: np.ndarray) -> None:
        terminals = self.network.terminals
        for src in srcs:
            src = int(src)
            dst = self.pattern.dest(src, self.rng)
            size = self.size_dist.sample(self.rng)
            if terminals[src] is None:
                # Unowned source of a partial (sharded) build: this shard
                # replays the full RNG stream for pid/stream alignment but
                # only its own terminals inject.  Consume the packet id the
                # owning shard assigns so pids stay aligned across shards.
                _next_packet_id()
                continue
            pkt = Packet(src, dst, size, create_cycle=cycle)
            terminals[src].offer(pkt)
            self.packets_generated += 1
            self.flits_generated += size


class BurstyTraffic(_ScanningTraffic):
    """On/off (two-state Markov) injection process.

    Each terminal alternates between an *on* state, injecting at
    ``rate / duty_cycle`` (capped at channel rate), and an *off* state,
    injecting nothing; state dwell times are geometric with mean
    ``burst_length`` (on) and ``burst_length * (1 - duty) / duty`` (off),
    so the long-run offered load equals ``rate``.  Burstiness stresses the
    adaptive algorithms' transient behaviour beyond what the Bernoulli
    process of :class:`SyntheticTraffic` exercises.

    The on/off state evolves one step per scanned cycle (never dormant —
    even at rate 0 the flip draws must tick, exactly as per-cycle
    operation consumes them), so ``fraction_on`` reflects the highest
    scanned cycle, which may run ahead of the simulator clock by up to the
    scan lookahead while the network is quiet.
    """

    def __init__(
        self,
        network: "Network",
        pattern: TrafficPattern,
        rate: float,
        duty_cycle: float = 0.25,
        burst_length: float = 64.0,
        size_dist: SizeDistribution | None = None,
        seed: int = 1,
    ):
        if not 0.0 <= rate <= 1.0:
            raise ValueError("offered rate is in flits/cycle/terminal, [0, 1]")
        if not 0.0 < duty_cycle <= 1.0:
            raise ValueError("duty_cycle must be in (0, 1]")
        if burst_length < 1.0:
            raise ValueError("burst_length must be >= 1 cycle")
        if rate / duty_cycle > 1.0:
            raise ValueError(
                f"on-state rate {rate / duty_cycle:.2f} exceeds channel "
                "capacity; raise duty_cycle or lower rate"
            )
        if pattern.num_terminals != network.topology.num_terminals:
            raise ValueError("pattern sized for a different network")
        self.network = network
        self.pattern = pattern
        self.rate = rate
        self.duty_cycle = duty_cycle
        self.burst_length = burst_length
        self.size_dist = size_dist or UniformSize(1, 16)
        self.rng = np.random.default_rng(seed)
        self._init_scan()
        n = network.topology.num_terminals
        self._on = self.rng.random(n) < duty_cycle  # stationary start
        self._p_on = rate / duty_cycle / self.size_dist.mean
        self._leave_on = 1.0 / burst_length
        off_length = burst_length * (1.0 - duty_cycle) / duty_cycle
        self._leave_off = 1.0 / max(1.0, off_length)
        self._num_terminals = n

    def _scan_block(self, cycle: int) -> np.ndarray:
        flips = self.rng.random(self._num_terminals)
        leave = np.where(self._on, self._leave_on, self._leave_off)
        self._on = np.logical_xor(self._on, flips < leave)
        draws = self.rng.random(self._num_terminals)
        return np.nonzero(np.logical_and(self._on, draws < self._p_on))[0]

    def _apply(self, cycle: int, srcs: np.ndarray) -> None:
        terminals = self.network.terminals
        for src in srcs:
            src = int(src)
            dst = self.pattern.dest(src, self.rng)
            size = self.size_dist.sample(self.rng)
            if terminals[src] is None:
                _next_packet_id()  # unowned source: pid alignment only
                continue
            terminals[src].offer(
                Packet(src, dst, size, create_cycle=cycle)
            )
            self.packets_generated += 1
            self.flits_generated += size

    @property
    def fraction_on(self) -> float:
        return float(np.mean(self._on))
