"""Open-loop synthetic injection process.

Each terminal independently starts a new packet each cycle with probability
``rate / mean_packet_size``, so that the *offered load* equals ``rate`` flits
per cycle per terminal (1.0 = terminal-channel capacity).  Generation is
open-loop: packets keep accumulating in the source queue even when the
network cannot accept them, which is what the saturation detector observes.

The per-cycle Bernoulli draws are vectorized over terminals with NumPy (the
generation loop showed up in profiles of early versions; see the optimization
guide's "vectorize the measured bottleneck" rule).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..network.types import Packet
from .base import TrafficPattern
from .sizes import SizeDistribution, UniformSize

if TYPE_CHECKING:  # pragma: no cover
    from ..network.network import Network


class SyntheticTraffic:
    """A simulator process generating synthetic traffic on every terminal."""

    #: Compatible with the SoA datapath (repro.network.soa): only calls
    #: Terminal.offer(), which both engines handle identically.
    soa_safe = True

    def __init__(
        self,
        network: "Network",
        pattern: TrafficPattern,
        rate: float,
        size_dist: SizeDistribution | None = None,
        seed: int = 1,
        warmup_mark: int = 0,
        sources: "list[int] | None" = None,
    ):
        if not 0.0 <= rate <= 1.0:
            raise ValueError("offered rate is in flits/cycle/terminal, [0, 1]")
        if pattern.num_terminals != network.topology.num_terminals:
            raise ValueError("pattern sized for a different network")
        self.network = network
        self.pattern = pattern
        self.rate = rate
        self.size_dist = size_dist or UniformSize(1, 16)
        self.rng = np.random.default_rng(seed)
        self.enabled = True
        self.packets_generated = 0
        self.flits_generated = 0
        self._num_terminals = network.topology.num_terminals
        #: restrict generation to these terminals (fault experiments exclude
        #: the detached terminals of statically-failed routers); None keeps
        #: the default all-terminals path byte-identical.
        self._sources = None
        if sources is not None:
            self._sources = np.array(sorted(set(int(s) for s in sources)))
            if self._sources.size == 0:
                raise ValueError("sources must name at least one terminal")
            if self._sources[0] < 0 or self._sources[-1] >= self._num_terminals:
                raise ValueError("source terminal id out of range")
        self._p = rate / self.size_dist.mean

    def __call__(self, cycle: int) -> None:
        if not self.enabled or self._p <= 0.0:
            return
        if self._sources is None:
            draws = self.rng.random(self._num_terminals)
            srcs = np.nonzero(draws < self._p)[0]
        else:
            draws = self.rng.random(self._sources.size)
            srcs = self._sources[draws < self._p]
        for src in srcs:
            src = int(src)
            dst = self.pattern.dest(src, self.rng)
            size = self.size_dist.sample(self.rng)
            pkt = Packet(src, dst, size, create_cycle=cycle)
            self.network.terminals[src].offer(pkt)
            self.packets_generated += 1
            self.flits_generated += size

    def stop(self) -> None:
        self.enabled = False


class BurstyTraffic:
    """On/off (two-state Markov) injection process.

    Each terminal alternates between an *on* state, injecting at
    ``rate / duty_cycle`` (capped at channel rate), and an *off* state,
    injecting nothing; state dwell times are geometric with mean
    ``burst_length`` (on) and ``burst_length * (1 - duty) / duty`` (off),
    so the long-run offered load equals ``rate``.  Burstiness stresses the
    adaptive algorithms' transient behaviour beyond what the Bernoulli
    process of :class:`SyntheticTraffic` exercises.
    """

    soa_safe = True  # only calls Terminal.offer(); see SyntheticTraffic

    def __init__(
        self,
        network: "Network",
        pattern: TrafficPattern,
        rate: float,
        duty_cycle: float = 0.25,
        burst_length: float = 64.0,
        size_dist: SizeDistribution | None = None,
        seed: int = 1,
    ):
        if not 0.0 <= rate <= 1.0:
            raise ValueError("offered rate is in flits/cycle/terminal, [0, 1]")
        if not 0.0 < duty_cycle <= 1.0:
            raise ValueError("duty_cycle must be in (0, 1]")
        if burst_length < 1.0:
            raise ValueError("burst_length must be >= 1 cycle")
        if rate / duty_cycle > 1.0:
            raise ValueError(
                f"on-state rate {rate / duty_cycle:.2f} exceeds channel "
                "capacity; raise duty_cycle or lower rate"
            )
        if pattern.num_terminals != network.topology.num_terminals:
            raise ValueError("pattern sized for a different network")
        self.network = network
        self.pattern = pattern
        self.rate = rate
        self.duty_cycle = duty_cycle
        self.burst_length = burst_length
        self.size_dist = size_dist or UniformSize(1, 16)
        self.rng = np.random.default_rng(seed)
        self.enabled = True
        self.packets_generated = 0
        self.flits_generated = 0
        n = network.topology.num_terminals
        self._on = self.rng.random(n) < duty_cycle  # stationary start
        self._p_on = rate / duty_cycle / self.size_dist.mean
        self._leave_on = 1.0 / burst_length
        off_length = burst_length * (1.0 - duty_cycle) / duty_cycle
        self._leave_off = 1.0 / max(1.0, off_length)
        self._num_terminals = n

    def __call__(self, cycle: int) -> None:
        if not self.enabled:
            return
        flips = self.rng.random(self._num_terminals)
        leave = np.where(self._on, self._leave_on, self._leave_off)
        self._on = np.logical_xor(self._on, flips < leave)
        draws = self.rng.random(self._num_terminals)
        active = np.logical_and(self._on, draws < self._p_on)
        for src in np.nonzero(active)[0]:
            src = int(src)
            dst = self.pattern.dest(src, self.rng)
            size = self.size_dist.sample(self.rng)
            self.network.terminals[src].offer(
                Packet(src, dst, size, create_cycle=cycle)
            )
            self.packets_generated += 1
            self.flits_generated += size

    @property
    def fraction_on(self) -> float:
        return float(np.mean(self._on))

    def stop(self) -> None:
        self.enabled = False
