"""Packet-size distributions.

The paper's synthetic evaluation uses packets "randomly sized from 1 to 16
flits" (:class:`UniformSize` (1, 16)); the DAL analysis (footnote 3) quotes
throughput caps for single-flit packets (:class:`FixedSize` (1)) and the same
uniform mix.
"""

from __future__ import annotations

import numpy as np


class SizeDistribution:
    """Distribution of packet sizes in flits."""

    name = "size"

    @property
    def mean(self) -> float:
        raise NotImplementedError

    @property
    def max_size(self) -> int:
        raise NotImplementedError

    def sample(self, rng: np.random.Generator) -> int:
        raise NotImplementedError


class FixedSize(SizeDistribution):
    def __init__(self, size: int):
        if size < 1:
            raise ValueError("packet size must be >= 1")
        self.size = size
        self.name = f"fixed{size}"

    @property
    def mean(self) -> float:
        return float(self.size)

    @property
    def max_size(self) -> int:
        return self.size

    def sample(self, rng: np.random.Generator) -> int:
        return self.size


class UniformSize(SizeDistribution):
    """Uniform over [lo, hi] inclusive; the paper's 1..16 flit mix."""

    def __init__(self, lo: int = 1, hi: int = 16):
        if lo < 1 or hi < lo:
            raise ValueError("need 1 <= lo <= hi")
        self.lo, self.hi = lo, hi
        self.name = f"uniform{lo}-{hi}"

    @property
    def mean(self) -> float:
        return (self.lo + self.hi) / 2.0

    @property
    def max_size(self) -> int:
        return self.hi

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.lo, self.hi + 1))


class BimodalSize(SizeDistribution):
    """Short control packets mixed with long data packets (extra)."""

    def __init__(self, short: int = 1, long: int = 16, long_fraction: float = 0.5):
        if not 0.0 <= long_fraction <= 1.0:
            raise ValueError("long_fraction must be in [0, 1]")
        self.short, self.long, self.long_fraction = short, long, long_fraction
        self.name = f"bimodal{short}/{long}@{long_fraction}"

    @property
    def mean(self) -> float:
        return self.long * self.long_fraction + self.short * (1 - self.long_fraction)

    @property
    def max_size(self) -> int:
        return max(self.short, self.long)

    def sample(self, rng: np.random.Generator) -> int:
        return self.long if rng.random() < self.long_fraction else self.short
