"""Traffic-pattern interface.

A :class:`TrafficPattern` maps a source terminal to a destination terminal.
Deterministic patterns (bit complement, swap2) ignore the generator; random
patterns (uniform random, URB, DCR) use it.  Patterns that need topology
structure take the :class:`~repro.topology.hyperx.HyperX` instance so they can
work on router coordinates, matching Table 3 of the paper.
"""

from __future__ import annotations

import numpy as np


class TrafficPattern:
    """Maps source terminals to destination terminals."""

    name: str = "pattern"

    def __init__(self, num_terminals: int):
        if num_terminals < 2:
            raise ValueError("need at least two terminals")
        self.num_terminals = num_terminals

    def dest(self, src: int, rng: np.random.Generator) -> int:
        """Destination terminal for one packet from ``src``."""
        raise NotImplementedError

    def is_deterministic(self) -> bool:
        """True when ``dest`` ignores the RNG (fixed permutation traffic)."""
        return False

    def _check_src(self, src: int) -> None:
        if not 0 <= src < self.num_terminals:
            raise ValueError(f"source terminal {src} out of range")
