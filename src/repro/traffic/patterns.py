"""The paper's synthetic traffic patterns (Table 3) plus common extras.

Terminal ids follow the HyperX attachment convention: terminal
``t = router * T + local`` where ``T`` is terminals-per-router.

* **UR** — uniform random over all other terminals.
* **BC** — bit complement of the terminal id (``N-1-t`` for power-of-two N).
* **URB(d)** — uniform random bisection: the destination router coordinate in
  the *targeted* dimension is the complement of the source's; every other
  dimension (and the local terminal) is uniform random.  ``URBx`` stresses the
  first dimension (congestion visible at the source router), ``URBy`` the
  second (invisible to source-adaptive routing — the paper's key experiment).
* **S2** — swap2: even terminals complement their coordinate in dimension 0,
  odd terminals in dimension 1; a deterministic permutation leaving most of
  the network's bandwidth unused.
* **DCR** — dimension complement reverse, the worst-case admissible pattern
  for a 3-D HyperX: a source at ``(x, y, z)`` sends to the Z-line at
  ``(C(z), C(y), *)`` (``C`` = coordinate complement), choosing the final Z
  coordinate and the local terminal uniformly at random.  Under DOR all
  ``w*T`` terminals of an X-line funnel through a single Y-channel
  (``w*T : 1`` oversubscription — 64:1 in the paper's 8x8x8/T=8 network).
"""

from __future__ import annotations

import numpy as np

from ..topology.hyperx import HyperX
from .base import TrafficPattern


class UniformRandom(TrafficPattern):
    """UR: uniform random destination, excluding self."""

    name = "UR"

    def dest(self, src: int, rng: np.random.Generator) -> int:
        self._check_src(src)
        d = int(rng.integers(self.num_terminals - 1))
        return d + 1 if d >= src else d


class UniformRandomSubset(TrafficPattern):
    """URsub: uniform random over an allowed subset of terminals.

    Used by the fault experiments to keep traffic off the detached terminals
    of statically-failed routers; destinations are drawn uniformly from
    ``allowed`` (excluding the source when it is itself allowed).
    """

    name = "URsub"

    def __init__(self, num_terminals: int, allowed: "list[int]"):
        super().__init__(num_terminals)
        self.allowed = sorted(set(int(t) for t in allowed))
        if len(self.allowed) < 2:
            raise ValueError("need at least two allowed terminals")
        if self.allowed[0] < 0 or self.allowed[-1] >= num_terminals:
            raise ValueError("allowed terminal id out of range")
        self._allowed_arr = np.array(self.allowed)

    def dest(self, src: int, rng: np.random.Generator) -> int:
        self._check_src(src)
        while True:
            d = int(self._allowed_arr[rng.integers(self._allowed_arr.size)])
            if d != src:
                return d


class BitComplement(TrafficPattern):
    """BC: destination id is the bitwise complement of the source id."""

    name = "BC"

    def dest(self, src: int, rng: np.random.Generator) -> int:
        self._check_src(src)
        return self.num_terminals - 1 - src

    def is_deterministic(self) -> bool:
        return True


class _HyperXPattern(TrafficPattern):
    """Base for patterns defined on HyperX router coordinates."""

    def __init__(self, topology: HyperX):
        super().__init__(topology.num_terminals)
        self.topology = topology
        self.tpr = topology.terminals_per_router

    def _split(self, terminal: int) -> tuple[tuple[int, ...], int]:
        router, local = divmod(terminal, self.tpr)
        return self.topology.coords(router), local

    def _join(self, coords: list[int], local: int) -> int:
        return self.topology.router_id(coords) * self.tpr + local


class UniformRandomBisection(_HyperXPattern):
    """URB(d): complement in the targeted dimension, uniform elsewhere."""

    def __init__(self, topology: HyperX, dim: int):
        super().__init__(topology)
        if not 0 <= dim < topology.num_dims:
            raise ValueError(f"dimension {dim} out of range")
        self.dim = dim
        self.name = f"URB{'xyzw'[dim] if dim < 4 else dim}"

    def dest(self, src: int, rng: np.random.Generator) -> int:
        self._check_src(src)
        coords, _ = self._split(src)
        widths = self.topology.widths
        out = [int(rng.integers(w)) for w in widths]
        out[self.dim] = widths[self.dim] - 1 - coords[self.dim]
        local = int(rng.integers(self.tpr))
        return self._join(out, local)


class Swap2(_HyperXPattern):
    """S2: even terminals complement dim 0, odd terminals complement dim 1."""

    name = "S2"

    def __init__(self, topology: HyperX):
        super().__init__(topology)
        if topology.num_dims < 2:
            raise ValueError("Swap2 needs at least 2 dimensions")

    def dest(self, src: int, rng: np.random.Generator) -> int:
        self._check_src(src)
        coords, local = self._split(src)
        dim = 0 if src % 2 == 0 else 1
        out = list(coords)
        out[dim] = self.topology.widths[dim] - 1 - coords[dim]
        return self._join(out, local)

    def is_deterministic(self) -> bool:
        return True


class DimensionComplementReverse(_HyperXPattern):
    """DCR: worst-case admissible traffic for a 3-D HyperX (Table 3)."""

    name = "DCR"

    def __init__(self, topology: HyperX):
        super().__init__(topology)
        if topology.num_dims != 3:
            raise ValueError("DCR is defined for 3-D HyperX networks")

    def dest(self, src: int, rng: np.random.Generator) -> int:
        self._check_src(src)
        (x, y, z), _ = self._split(src)
        wx, wy, wz = self.topology.widths
        out = [wx - 1 - z if wx == wz else int(rng.integers(wx)), wy - 1 - y, int(rng.integers(wz))]
        local = int(rng.integers(self.tpr))
        return self._join(out, local)


class Tornado(_HyperXPattern):
    """Tornado: shift by half the width in one dimension (extra pattern)."""

    def __init__(self, topology: HyperX, dim: int = 0):
        super().__init__(topology)
        self.dim = dim
        self.name = f"TOR{'xyzw'[dim] if dim < 4 else dim}"

    def dest(self, src: int, rng: np.random.Generator) -> int:
        self._check_src(src)
        coords, local = self._split(src)
        w = self.topology.widths[self.dim]
        out = list(coords)
        out[self.dim] = (coords[self.dim] + w // 2) % w
        return self._join(out, local)

    def is_deterministic(self) -> bool:
        return True


class Transpose(TrafficPattern):
    """Transpose the two halves of the terminal id bits (extra pattern)."""

    name = "TP"

    def __init__(self, num_terminals: int):
        super().__init__(num_terminals)
        bits = num_terminals.bit_length() - 1
        if (1 << bits) != num_terminals or bits % 2 != 0:
            raise ValueError("transpose needs N = 4^k terminals")
        self._half = bits // 2
        self._mask = (1 << self._half) - 1

    def dest(self, src: int, rng: np.random.Generator) -> int:
        self._check_src(src)
        lo = src & self._mask
        hi = src >> self._half
        return (lo << self._half) | hi

    def is_deterministic(self) -> bool:
        return True


class RandomPermutation(TrafficPattern):
    """A fixed random permutation drawn once at construction (extra pattern)."""

    name = "PERM"

    def __init__(self, num_terminals: int, seed: int = 0):
        super().__init__(num_terminals)
        rng = np.random.default_rng(seed)
        while True:
            perm = rng.permutation(num_terminals)
            if not np.any(perm == np.arange(num_terminals)):
                break
        self._perm = perm

    def dest(self, src: int, rng: np.random.Generator) -> int:
        self._check_src(src)
        return int(self._perm[src])

    def is_deterministic(self) -> bool:
        return True


class Hotspot(TrafficPattern):
    """A fraction of traffic targets a small hot set; rest is uniform."""

    name = "HOT"

    def __init__(self, num_terminals: int, hot: list[int], fraction: float = 0.2):
        super().__init__(num_terminals)
        if not hot:
            raise ValueError("need at least one hot terminal")
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        self.hot = list(hot)
        self.fraction = fraction
        self._uniform = UniformRandom(num_terminals)

    def dest(self, src: int, rng: np.random.Generator) -> int:
        self._check_src(src)
        if rng.random() < self.fraction:
            choices = [h for h in self.hot if h != src] or [
                (src + 1) % self.num_terminals
            ]
            return choices[int(rng.integers(len(choices)))]
        return self._uniform.dest(src, rng)


def pattern_by_name(name: str, topology: HyperX) -> TrafficPattern:
    """Build a traffic pattern from its canonical name.

    This is the shared reconstruction path used by the CLI and by the
    parallel sweep workers (which receive pattern *names* in their picklable
    point specs and rebuild the pattern in the worker process).  Raises
    ``ValueError`` for unknown names or patterns invalid on ``topology``
    (e.g. DCR on a 2-D network).
    """
    if name == "UR":
        return UniformRandom(topology.num_terminals)
    if name == "BC":
        return BitComplement(topology.num_terminals)
    if name == "S2":
        return Swap2(topology)
    if name == "DCR":
        return DimensionComplementReverse(topology)
    if name == "TP":
        return Transpose(topology.num_terminals)
    if name == "PERM":
        return RandomPermutation(topology.num_terminals)
    axes = "xyzw"
    if len(name) == 4 and name[3] in axes:
        if name.startswith("URB"):
            return UniformRandomBisection(topology, axes.index(name[3]))
        if name.startswith("TOR"):
            return Tornado(topology, axes.index(name[3]))
    raise ValueError(f"unknown traffic pattern {name!r}")


def paper_patterns(topology: HyperX) -> dict[str, TrafficPattern]:
    """The six patterns of the paper's Figure 6 for a 3-D HyperX."""
    return {
        "UR": UniformRandom(topology.num_terminals),
        "BC": BitComplement(topology.num_terminals),
        "URBx": UniformRandomBisection(topology, 0),
        "URBy": UniformRandomBisection(topology, 1),
        "S2": Swap2(topology),
        "DCR": DimensionComplementReverse(topology),
    }
