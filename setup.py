"""Shim for legacy editable installs (environments without the wheel pkg).

All real metadata lives in pyproject.toml; install with
``pip install -e . --no-use-pep517`` when build isolation is unavailable.
"""

from setuptools import setup

setup()
